//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, covering the subset `crates/bench/benches/micro.rs`
//! uses: `criterion_group!`/`criterion_main!`, benchmark groups with
//! throughput annotations, `Bencher::iter` and `Bencher::iter_batched`,
//! `BenchmarkId`, and builder-style `Criterion` configuration.
//!
//! Measurement model: warm up for `warm_up_time`, calibrate a batch size
//! so one timing window is ≥ 1 ms, then collect up to `sample_size`
//! window means within `measurement_time` and report their median.
//! Far simpler than criterion's bootstrap analysis, but stable enough to
//! track order-of-magnitude regressions.
//!
//! Set `BENCH_JSON=/path/to/file.json` to append one JSON line per
//! benchmark (`{"group","bench","median_ns","throughput_per_s"}`, plus
//! `"threads"` when the group carries a core-count annotation) — the
//! workspace's `BENCH_*.json` baselines are recorded this way.
//!
//! Two shim-only extensions beyond the real criterion API (call sites
//! must drop them if the registry crate is ever swapped back in):
//! [`BenchmarkGroup::threads`], which stamps the emitted JSON rows with
//! the thread count a parallel benchmark ran at so `bench_guard` can key
//! scaling comparisons on `(group, bench, threads)`; and the
//! `BENCH_FILTER` environment variable (criterion proper takes the
//! filter positionally).

#![forbid(unsafe_code)]

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup; the shim treats all variants
/// identically (setup always runs untimed).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier for a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id from just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Set the target number of timing samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    /// Set the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named benchmark group. The group starts from this
    /// criterion's configuration; group-level overrides (sample size,
    /// times) stay local to the group, as in real criterion.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let config = self.clone();
        BenchmarkGroup {
            _criterion: self,
            config,
            name: name.into(),
            throughput: None,
            threads: None,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.clone();
        run_one(&config, "", &id.into().id, None, None, f);
        self
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    // Held only for API-faithful exclusivity (one open group at a time).
    _criterion: &'a mut Criterion,
    config: Criterion,
    name: String,
    throughput: Option<Throughput>,
    threads: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Shim extension (not in real criterion): stamp subsequent
    /// benchmarks' `BENCH_JSON` rows with the thread count they ran at,
    /// so regression guards can key on `(group, bench, threads)`.
    pub fn threads(&mut self, n: usize) -> &mut Self {
        self.threads = Some(n as u64);
        self
    }

    /// Override the sample target for this group's benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(3);
        self
    }

    /// Override the measurement budget for this group's benchmarks.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Override the warm-up duration for this group's benchmarks.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Benchmark `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.config.clone();
        run_one(
            &config,
            &self.name,
            &id.into().id,
            self.throughput,
            self.threads,
            f,
        );
        self
    }

    /// Benchmark `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let config = self.config.clone();
        run_one(
            &config,
            &self.name,
            &id.id,
            self.throughput,
            self.threads,
            |b| f(b, input),
        );
        self
    }

    /// Finish the group (reporting happens eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    config: Criterion,
    median_ns: Option<f64>,
}

impl Bencher {
    /// Benchmark `f` called repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_until = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_until {
            black_box(f());
        }

        // Calibrate: double the batch until one window is ≥ 1 ms.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let window = start.elapsed();
            if window >= Duration::from_millis(1) || batch >= 1 << 28 {
                break;
            }
            batch *= 2;
        }

        let deadline = Instant::now() + self.config.measurement_time;
        let mut samples = Vec::with_capacity(self.config.sample_size);
        while samples.len() < 3
            || (samples.len() < self.config.sample_size && Instant::now() < deadline)
        {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(start.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        self.median_ns = Some(median(&mut samples));
    }

    /// Benchmark `routine` on fresh inputs from `setup`; `setup` runs
    /// untimed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_until = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_until {
            black_box(routine(setup()));
        }

        let mut batch = 1usize;
        loop {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let window = start.elapsed();
            if window >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }

        let deadline = Instant::now() + self.config.measurement_time;
        let mut samples = Vec::with_capacity(self.config.sample_size);
        while samples.len() < 3
            || (samples.len() < self.config.sample_size && Instant::now() < deadline)
        {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            samples.push(start.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        self.median_ns = Some(median(&mut samples));
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn run_one<F: FnMut(&mut Bencher)>(
    config: &Criterion,
    group: &str,
    bench: &str,
    throughput: Option<Throughput>,
    threads: Option<u64>,
    mut f: F,
) {
    // BENCH_FILTER=<substring> runs only benchmarks whose "group/bench"
    // id contains the substring — the shim's equivalent of criterion's
    // positional filter argument (the harness's argv is not plumbed
    // through `criterion_main!`, an env var is). CI's bench-smoke job
    // uses this to time just the `bubble_decode` group.
    if let Ok(filter) = std::env::var("BENCH_FILTER") {
        if !filter.is_empty() && !format!("{group}/{bench}").contains(&filter) {
            return;
        }
    }
    let mut bencher = Bencher {
        config: config.clone(),
        median_ns: None,
    };
    f(&mut bencher);
    let Some(ns) = bencher.median_ns else {
        return; // closure never called iter()
    };

    let full = if group.is_empty() {
        bench.to_string()
    } else {
        format!("{group}/{bench}")
    };
    let (rate, rate_str) = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_s = n as f64 * 1e9 / ns;
            (Some(per_s), format!("  thrpt: {} elem/s", human(per_s)))
        }
        Some(Throughput::Bytes(n)) => {
            let per_s = n as f64 * 1e9 / ns;
            (Some(per_s), format!("  thrpt: {}B/s", human(per_s)))
        }
        None => (None, String::new()),
    };
    println!(
        "{full:<44} time: {:>12}{rate_str}",
        format!("{} ns", human(ns))
    );

    if let Ok(path) = std::env::var("BENCH_JSON") {
        let line = json_line(group, bench, threads, ns, rate);
        let write = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut file| file.write_all(line.as_bytes()));
        if let Err(e) = write {
            eprintln!("warning: could not append to BENCH_JSON={path}: {e}");
        }
    }
}

/// One `BENCH_JSON` record: `threads` is emitted only when the group
/// was annotated with a core count, keeping pre-existing baselines'
/// shape unchanged.
fn json_line(group: &str, bench: &str, threads: Option<u64>, ns: f64, rate: Option<f64>) -> String {
    let threads_field = threads.map_or(String::new(), |t| format!("\"threads\":{t},"));
    format!(
        "{{\"group\":\"{group}\",\"bench\":\"{bench}\",{threads_field}\"median_ns\":{ns:.1},\"throughput_per_s\":{}}}\n",
        rate.map_or("null".to_string(), |r| format!("{r:.1}")),
    )
}

fn human(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.3}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.3}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.3}k", x / 1e3)
    } else {
        format!("{x:.3}")
    }
}

/// Define a benchmark group function, with or without a `config`.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the benchmark binary's `main` from group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_a_sane_median() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(1));
        g.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
        g.finish();
    }

    #[test]
    fn iter_batched_runs_setup_untimed() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("shim");
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("a", 3).id, "a/3");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }

    #[test]
    fn json_line_includes_threads_only_when_annotated() {
        let plain = json_line("bubble_decode", "n256_B256", None, 4700000.04, None);
        assert_eq!(
            plain,
            "{\"group\":\"bubble_decode\",\"bench\":\"n256_B256\",\"median_ns\":4700000.0,\"throughput_per_s\":null}\n"
        );
        let threaded = json_line("throughput", "n256_B256_t4", Some(4), 1e6, Some(8000.04));
        assert_eq!(
            threaded,
            "{\"group\":\"throughput\",\"bench\":\"n256_B256_t4\",\"threads\":4,\"median_ns\":1000000.0,\"throughput_per_s\":8000.0}\n"
        );
    }

    #[test]
    fn group_config_overrides_stay_local_to_the_group() {
        let mut c = Criterion::default().sample_size(20);
        {
            let mut g = c.benchmark_group("local");
            g.sample_size(5)
                .measurement_time(Duration::from_millis(30))
                .warm_up_time(Duration::from_millis(1));
            g.threads(2);
            g.bench_function("tiny", |b| b.iter(|| black_box(1u64 + 1)));
            g.finish();
        }
        // The parent criterion is untouched by group-level overrides.
        assert_eq!(c.sample_size, 20);
    }
}
