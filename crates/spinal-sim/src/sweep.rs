//! Parallel execution of embarrassingly-parallel trial grids.
//!
//! Spinal decoding is CPU-bound, so per the session guides we use plain
//! scoped threads (no async runtime): a shared atomic work index hands
//! out jobs, and each worker collects results into a private buffer that
//! is merged exactly once when the worker exits — under many short jobs a
//! per-result shared push would serialise the workers on the lock.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `f(job_index)` for every index in `0..jobs`, in parallel, and
/// return results in job order. `f` must be `Sync` (it receives distinct
/// indices concurrently).
pub fn run_parallel<R, F>(jobs: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    run_parallel_with(jobs, threads, || (), |(), i| f(i))
}

/// [`run_parallel`] with mutable per-worker state: each worker thread
/// builds one `state = init()` and every job it claims receives
/// `f(&mut state, job_index)`.
///
/// This is the seam for reusing expensive scratch across jobs — e.g. one
/// [`spinal_core::DecodeWorkspace`] per worker so that a whole sweep
/// performs no decode-path allocation after each worker's first trial.
pub fn run_parallel_with<S, R, I, F>(jobs: usize, threads: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    assert!(threads >= 1);
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(jobs));
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.max(1)) {
            scope.spawn(|| {
                let mut state = init();
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    local.push((i, f(&mut state, i)));
                }
                if !local.is_empty() {
                    results.lock().append(&mut local);
                }
            });
        }
    });
    let mut v = results.into_inner();
    v.sort_by_key(|(i, _)| *i);
    v.into_iter().map(|(_, r)| r).collect()
}

/// Default worker count: all available cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_job_order() {
        let out = run_parallel(100, 8, |i| i * i);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn single_thread_works() {
        let out = run_parallel(10, 1, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<usize> = run_parallel(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn per_thread_state_is_initialised_once_per_worker_and_reused() {
        use std::sync::atomic::AtomicU32;
        let inits = AtomicU32::new(0);
        let threads = 4;
        // Each worker's state counts the jobs it served; the total across
        // workers must equal the job count, and `init` must run at most
        // once per worker.
        let out = run_parallel_with(
            64,
            threads,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |served, i| {
                *served += 1;
                (i, *served)
            },
        );
        assert!(inits.load(Ordering::Relaxed) <= threads as u32);
        assert_eq!(out.len(), 64);
        // Job order preserved, and at least one worker reused its state
        // (served > 1) when jobs outnumber workers.
        assert!(out.iter().enumerate().all(|(i, &(j, _))| i == j));
        assert!(out.iter().any(|&(_, served)| served > 1));
    }

    #[test]
    fn every_job_runs_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counters: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        run_parallel(64, 6, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "job {i}");
        }
    }
}
