//! Parallel execution of embarrassingly-parallel trial grids.
//!
//! Spinal decoding is CPU-bound, so per the session guides we use plain
//! scoped threads (no async runtime): a shared atomic work index hands
//! out jobs, and each worker collects results into a private buffer that
//! is merged exactly once when the worker exits — under many short jobs a
//! per-result shared push would serialise the workers on the lock.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `f(job_index)` for every index in `0..jobs`, in parallel, and
/// return results in job order. `f` must be `Sync` (it receives distinct
/// indices concurrently).
pub fn run_parallel<R, F>(jobs: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    run_parallel_with(jobs, threads, || (), |(), i| f(i))
}

/// [`run_parallel`] with mutable per-worker state: each worker thread
/// builds one `state = init()` and every job it claims receives
/// `f(&mut state, job_index)`.
///
/// This is the seam for reusing expensive scratch across jobs — e.g. one
/// [`spinal_core::DecodeWorkspace`] per worker so that a whole sweep
/// performs no decode-path allocation after each worker's first trial.
pub fn run_parallel_with<S, R, I, F>(jobs: usize, threads: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    assert!(threads >= 1);
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(jobs));
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.max(1)) {
            scope.spawn(|| {
                let mut state = init();
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    local.push((i, f(&mut state, i)));
                }
                if !local.is_empty() {
                    results.lock().append(&mut local);
                }
            });
        }
    });
    let mut v = results.into_inner();
    v.sort_by_key(|(i, _)| *i);
    v.into_iter().map(|(_, r)| r).collect()
}

/// Whether a grid sweep emits analytic bound columns next to its
/// simulated points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMode {
    /// Simulated values only (the classic figure sweeps).
    SimOnly,
    /// Each grid point also carries an analytic-oracle value (e.g. a
    /// `spinal-bounds` BLER upper bound), emitted as an extra CSV column
    /// so a plot — or the `bound_oracle` test harness — can overlay the
    /// curves directly.
    BoundOverlay,
}

/// One grid point of an overlay sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlayPoint {
    /// The swept coordinate (SNR in dB for the bound sweeps).
    pub x: f64,
    /// The simulated value at `x`.
    pub sim: f64,
    /// The analytic overlay value at `x`; `None` in [`SweepMode::SimOnly`].
    pub bound: Option<f64>,
}

/// Sweep `sim` over the grid `xs` in parallel (one worker state per
/// thread, as [`run_parallel_with`]) and, in
/// [`SweepMode::BoundOverlay`], evaluate the analytic `bound` at every
/// grid point alongside. The bound closure is assumed cheap (it runs
/// serially after the simulation).
pub fn run_overlay_with<S, I, F, G>(
    xs: &[f64],
    threads: usize,
    init: I,
    sim: F,
    mode: SweepMode,
    bound: G,
) -> Vec<OverlayPoint>
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, f64) -> f64 + Sync,
    G: Fn(f64) -> f64,
{
    let sims = run_parallel_with(xs.len(), threads, init, |state, i| sim(state, i, xs[i]));
    xs.iter()
        .zip(sims)
        .map(|(&x, s)| OverlayPoint {
            x,
            sim: s,
            bound: match mode {
                SweepMode::SimOnly => None,
                SweepMode::BoundOverlay => Some(bound(x)),
            },
        })
        .collect()
}

/// CSV header for an overlay sweep, matching [`overlay_csv_row`].
pub fn overlay_csv_header(x: &str, sim: &str, bound: &str, mode: SweepMode) -> String {
    match mode {
        SweepMode::SimOnly => format!("{x},{sim}"),
        SweepMode::BoundOverlay => format!("{x},{sim},{bound}"),
    }
}

/// Render one overlay point as a CSV row (`x,sim[,bound]`).
pub fn overlay_csv_row(p: &OverlayPoint) -> String {
    match p.bound {
        None => format!("{:.4},{:.6}", p.x, p.sim),
        Some(b) => format!("{:.4},{:.6},{:.6e}", p.x, p.sim, b),
    }
}

/// Default worker count: the [`crate::threads::Threads`]-resolved budget
/// (honours `SPINAL_THREADS`, falls back to all available cores).
pub fn default_threads() -> usize {
    crate::threads::Threads::default().get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_job_order() {
        let out = run_parallel(100, 8, |i| i * i);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn single_thread_works() {
        let out = run_parallel(10, 1, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<usize> = run_parallel(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn per_thread_state_is_initialised_once_per_worker_and_reused() {
        use std::sync::atomic::AtomicU32;
        let inits = AtomicU32::new(0);
        let threads = 4;
        // Each worker's state counts the jobs it served; the total across
        // workers must equal the job count, and `init` must run at most
        // once per worker.
        let out = run_parallel_with(
            64,
            threads,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |served, i| {
                *served += 1;
                (i, *served)
            },
        );
        assert!(inits.load(Ordering::Relaxed) <= threads as u32);
        assert_eq!(out.len(), 64);
        // Job order preserved, and at least one worker reused its state
        // (served > 1) when jobs outnumber workers.
        assert!(out.iter().enumerate().all(|(i, &(j, _))| i == j));
        assert!(out.iter().any(|&(_, served)| served > 1));
    }

    #[test]
    fn overlay_sweep_pairs_sim_with_bound() {
        let xs = [0.0, 5.0, 10.0];
        let pts = run_overlay_with(
            &xs,
            2,
            || (),
            |(), _i, x| x * 2.0,
            SweepMode::BoundOverlay,
            |x| x + 1.0,
        );
        assert_eq!(pts.len(), 3);
        for (p, &x) in pts.iter().zip(&xs) {
            assert_eq!(p.x, x);
            assert_eq!(p.sim, x * 2.0);
            assert_eq!(p.bound, Some(x + 1.0));
        }
    }

    #[test]
    fn sim_only_mode_skips_the_bound() {
        let pts = run_overlay_with(
            &[1.0, 2.0],
            1,
            || (),
            |(), _, x| x,
            SweepMode::SimOnly,
            |_| panic!("bound must not be evaluated in SimOnly"),
        );
        assert!(pts.iter().all(|p| p.bound.is_none()));
    }

    #[test]
    fn overlay_csv_shapes() {
        assert_eq!(
            overlay_csv_header("snr_db", "sim_bler", "bound_bler", SweepMode::BoundOverlay),
            "snr_db,sim_bler,bound_bler"
        );
        assert_eq!(
            overlay_csv_header("snr_db", "sim_bler", "bound_bler", SweepMode::SimOnly),
            "snr_db,sim_bler"
        );
        let with = OverlayPoint {
            x: 6.0,
            sim: 0.25,
            bound: Some(0.5),
        };
        assert_eq!(overlay_csv_row(&with), "6.0000,0.250000,5.000000e-1");
        let without = OverlayPoint {
            x: 6.0,
            sim: 0.25,
            bound: None,
        };
        assert_eq!(overlay_csv_row(&without), "6.0000,0.250000");
    }

    #[test]
    fn every_job_runs_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counters: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        run_parallel(64, 6, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "job {i}");
        }
    }
}
