//! Statistics the paper's evaluation reports: rate in bits/symbol, gap
//! to capacity, fraction of capacity, and symbols-to-decode CDFs.

use spinal_channel::capacity::{awgn_capacity_db, gap_to_capacity_db};

/// Outcome of one message trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trial {
    /// Message length in bits.
    pub n_bits: usize,
    /// Symbols consumed at first successful decode; `None` = gave up.
    pub symbols: Option<usize>,
    /// Symbols spent when the trial gave up (charged against throughput).
    pub spent_on_failure: usize,
}

impl Trial {
    /// A successful trial.
    pub fn success(n_bits: usize, symbols: usize) -> Self {
        Trial {
            n_bits,
            symbols: Some(symbols),
            spent_on_failure: 0,
        }
    }

    /// A failed (gave-up) trial that burned `spent` symbols.
    pub fn failure(n_bits: usize, spent: usize) -> Self {
        Trial {
            n_bits,
            symbols: None,
            spent_on_failure: spent,
        }
    }
}

/// Aggregate over trials at one SNR point.
#[derive(Debug, Clone)]
pub struct PointSummary {
    /// SNR in dB.
    pub snr_db: f64,
    /// Throughput in bits per symbol: delivered bits / total symbols
    /// spent (failures included), the paper's rate metric.
    pub rate: f64,
    /// Gap to AWGN capacity in dB (≤ 0).
    pub gap_db: f64,
    /// Fraction of AWGN capacity achieved.
    pub fraction_of_capacity: f64,
    /// Trials that decoded.
    pub successes: usize,
    /// Total trials.
    pub trials: usize,
    /// Symbols-to-decode per successful trial (for CDFs, Fig 8-11).
    pub symbols_cdf: Vec<usize>,
}

/// Summarise trials at `snr_db`, judging capacity against the AWGN bound.
pub fn summarize(snr_db: f64, trials: &[Trial]) -> PointSummary {
    summarize_vs_capacity(snr_db, trials, awgn_capacity_db(snr_db))
}

/// Summarise against an explicit capacity (used for fading channels,
/// where the bound is the ergodic Rayleigh capacity).
pub fn summarize_vs_capacity(snr_db: f64, trials: &[Trial], capacity: f64) -> PointSummary {
    let mut delivered = 0usize;
    let mut spent = 0usize;
    let mut successes = 0usize;
    let mut cdf = Vec::new();
    for t in trials {
        match t.symbols {
            Some(s) => {
                delivered += t.n_bits;
                spent += s;
                successes += 1;
                cdf.push(s);
            }
            None => spent += t.spent_on_failure,
        }
    }
    cdf.sort_unstable();
    let rate = if spent == 0 {
        0.0
    } else {
        delivered as f64 / spent as f64
    };
    PointSummary {
        snr_db,
        rate,
        gap_db: gap_to_capacity_db(rate, snr_db),
        fraction_of_capacity: if capacity > 0.0 { rate / capacity } else { 0.0 },
        successes,
        trials: trials.len(),
        symbols_cdf: cdf,
    }
}

impl PointSummary {
    /// Empirical CDF value: fraction of successful trials decoding within
    /// `symbols`.
    pub fn cdf_at(&self, symbols: usize) -> f64 {
        if self.symbols_cdf.is_empty() {
            return 0.0;
        }
        let below = self.symbols_cdf.partition_point(|&s| s <= symbols);
        below as f64 / self.symbols_cdf.len() as f64
    }
}

/// Mean fraction-of-capacity across a set of summaries (the bar charts of
/// Figures 8-1 and 8-3 aggregate this way over SNR ranges).
pub fn mean_fraction_of_capacity(points: &[PointSummary]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    points.iter().map(|p| p.fraction_of_capacity).sum::<f64>() / points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_counts_failures_in_denominator() {
        let trials = vec![Trial::success(100, 50), Trial::failure(100, 150)];
        let s = summarize(10.0, &trials);
        assert!((s.rate - 100.0 / 200.0).abs() < 1e-12);
        assert_eq!(s.successes, 1);
        assert_eq!(s.trials, 2);
    }

    #[test]
    fn gap_matches_papers_example() {
        // Rate 3 at 12 dB → −3.55 dB gap (§8.1).
        let trials = vec![Trial::success(300, 100)];
        let s = summarize(12.0, &trials);
        assert!((s.rate - 3.0).abs() < 1e-12);
        assert!((s.gap_db + 3.55).abs() < 0.01);
    }

    #[test]
    fn cdf_is_monotone() {
        let trials: Vec<Trial> = (1..=10).map(|i| Trial::success(64, i * 10)).collect();
        let s = summarize(5.0, &trials);
        assert_eq!(s.cdf_at(9), 0.0);
        assert!((s.cdf_at(10) - 0.1).abs() < 1e-12);
        assert!((s.cdf_at(55) - 0.5).abs() < 1e-12);
        assert_eq!(s.cdf_at(100), 1.0);
        let mut last = 0.0;
        for n in (0..110).step_by(5) {
            let v = s.cdf_at(n);
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn fraction_of_capacity_uses_given_bound() {
        let trials = vec![Trial::success(100, 100)]; // rate 1.0
        let s = summarize_vs_capacity(0.0, &trials, 1.0); // capacity 1.0 at 0 dB
        assert!((s.fraction_of_capacity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_all_failed_edge_cases() {
        let s = summarize(5.0, &[]);
        assert_eq!(s.rate, 0.0);
        let s = summarize(5.0, &[Trial::failure(10, 0)]);
        assert_eq!(s.rate, 0.0);
        assert_eq!(s.gap_db, f64::NEG_INFINITY);
    }

    #[test]
    fn mean_fraction_aggregates() {
        let a = summarize_vs_capacity(0.0, &[Trial::success(100, 100)], 2.0); // 0.5
        let b = summarize_vs_capacity(0.0, &[Trial::success(100, 100)], 4.0); // 0.25
        let m = mean_fraction_of_capacity(&[a, b]);
        assert!((m - 0.375).abs() < 1e-12);
    }
}
