//! The "rated" (fixed-rate) spinal analysis behind Figure 8-2's hedging
//! study.
//!
//! A rated code commits to a symbol budget `N` up front: it occupies the
//! channel for exactly `N` symbols and delivers `n` bits only when the
//! realised noise allowed decoding within `N`. Its throughput at budget
//! `N` is therefore `(n/N)·P(symbols-to-decode ≤ N)` (failed blocks are
//! retransmitted, so the channel time is spent either way). The rateless
//! code instead spends exactly what each realisation needs. Figure 8-2's
//! claim: the rateless rate beats *every* fixed budget — which this
//! module lets the harness verify directly from the measured
//! symbols-to-decode distribution.

use crate::spinal_run::SpinalRun;
use spinal_core::DecodeWorkspace;

/// Measure the sorted symbols-to-decode distribution the rated analysis
/// consumes: `trials` rateless trials of `run` at `snr_db`, trial `t`
/// seeded with `seed_base + t·seed_step`, decoded through one reusable
/// [`DecodeWorkspace`]. Failed trials contribute no sample.
///
/// The explicit `seed_step` lets callers keep a pre-existing seed layout
/// (e.g. `fig8_2` spaces its historical trial seeds by `1 << 8`), so a
/// regenerated figure reproduces the same noise realisations it always
/// did.
///
/// This is the bridge from the trial engine to [`rated_throughput`] /
/// [`best_rated`] / [`rateless_throughput`]: run it once per SNR point
/// (sweeps parallelise over SNR points, so the workspace stays
/// per-worker).
pub fn symbols_to_decode_samples(
    run: &SpinalRun,
    snr_db: f64,
    trials: usize,
    seed_base: u64,
    seed_step: u64,
) -> Vec<usize> {
    let mut ws = DecodeWorkspace::new();
    let mut samples: Vec<usize> = (0..trials)
        .filter_map(|t| {
            run.run_trial_with_workspace(snr_db, seed_base + t as u64 * seed_step, &mut ws)
                .symbols
        })
        .collect();
    samples.sort_unstable();
    samples
}

/// Throughput of the rated (fixed-budget) variant at budget `n_symbols`,
/// given the sorted symbols-to-decode samples of the rateless decoder.
pub fn rated_throughput(n_bits: usize, sorted_samples: &[usize], n_symbols: usize) -> f64 {
    if sorted_samples.is_empty() || n_symbols == 0 {
        return 0.0;
    }
    let ok = sorted_samples.partition_point(|&s| s <= n_symbols);
    (n_bits as f64 / n_symbols as f64) * (ok as f64 / sorted_samples.len() as f64)
}

/// The best fixed budget and its throughput (the envelope of all rated
/// variants of the code).
pub fn best_rated(n_bits: usize, sorted_samples: &[usize]) -> (usize, f64) {
    let mut best = (0usize, 0.0f64);
    for &budget in sorted_samples {
        let t = rated_throughput(n_bits, sorted_samples, budget);
        if t > best.1 {
            best = (budget, t);
        }
    }
    best
}

/// The rateless throughput from the same samples: delivered bits over
/// spent symbols.
pub fn rateless_throughput(n_bits: usize, samples: &[usize]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    (n_bits * samples.len()) as f64 / samples.iter().sum::<usize>() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rated_at_max_sample_has_full_success() {
        let samples = vec![10, 20, 30, 40];
        let t = rated_throughput(100, &samples, 40);
        assert!((t - 100.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn rated_below_min_sample_is_zero() {
        let samples = vec![10, 20, 30];
        assert_eq!(rated_throughput(100, &samples, 5), 0.0);
    }

    #[test]
    fn rateless_beats_every_rated_budget_when_spread() {
        // The hedging effect: with spread-out decode times, rateless
        // wins. (Equality holds only for degenerate distributions.)
        let samples = vec![10, 15, 20, 40, 80];
        let rateless = rateless_throughput(100, &samples);
        let (_, rated) = best_rated(100, &samples);
        assert!(
            rateless > rated,
            "rateless {rateless} should beat best rated {rated}"
        );
    }

    #[test]
    fn degenerate_distribution_ties() {
        let samples = vec![25, 25, 25, 25];
        let rateless = rateless_throughput(100, &samples);
        let (budget, rated) = best_rated(100, &samples);
        assert_eq!(budget, 25);
        assert!((rateless - rated).abs() < 1e-12);
    }

    #[test]
    fn sample_collection_matches_individual_trials() {
        use spinal_core::CodeParams;
        let run = SpinalRun::new(CodeParams::default().with_n(96).with_b(64));
        let samples = symbols_to_decode_samples(&run, 15.0, 4, 100, 3);
        let mut expect: Vec<usize> = (0..4)
            .filter_map(|t| run.run_trial(15.0, 100 + 3 * t).symbols)
            .collect();
        expect.sort_unstable();
        assert_eq!(samples, expect);
        assert!(!samples.is_empty(), "15 dB trials should decode");
    }

    #[test]
    fn best_rated_picks_interior_optimum() {
        // One straggler: serving it costs everyone; best budget excludes
        // it. Budget 10 gives (100/10)·(4/5)=8; budget 100 gives
        // (100/100)·1=1.
        let samples = vec![10, 10, 10, 10, 100];
        let (budget, t) = best_rated(100, &samples);
        assert_eq!(budget, 10);
        assert!((t - 8.0).abs() < 1e-12);
    }
}
