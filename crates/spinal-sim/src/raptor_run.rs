//! Rateless trial runner for the Raptor baseline: LT bits ride on a
//! dense QAM constellation with exact soft demapping (§8 "Raptor code").

use crate::stats::Trial;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spinal_channel::capacity::awgn_capacity_db;
use spinal_channel::{AwgnChannel, Channel};
use spinal_modem::{Demapper, Qam};
use spinal_raptor::{RaptorCode, RaptorDecoder};

/// Configuration of a Raptor run.
#[derive(Debug, Clone)]
pub struct RaptorRun {
    /// Message bits per block (paper: 9500).
    pub k: usize,
    /// QAM bits per symbol (8 = QAM-256, 6 = QAM-64).
    pub qam_bits: u32,
    /// Attempt growth factor: after a failed attempt, receive this
    /// factor more symbols before trying again (engine granularity; the
    /// paper's engine attempts continuously, which only changes symbol
    /// counts by < the factor).
    pub attempt_growth: f64,
    /// Give-up cap as a multiple of the capacity-ideal symbol count.
    pub max_overhead: f64,
    /// BP iteration cap per attempt.
    pub bp_iterations: usize,
}

impl RaptorRun {
    /// Paper configuration: k=9500 over QAM-256.
    pub fn new(k: usize, qam_bits: u32) -> Self {
        RaptorRun {
            k,
            qam_bits,
            attempt_growth: 1.08,
            max_overhead: 8.0,
            bp_iterations: 40,
        }
    }

    /// Run one message trial at `snr_db`.
    pub fn run_trial(&self, snr_db: f64, seed: u64) -> Trial {
        let code = RaptorCode::new(self.k, seed ^ 0x4A77);
        let decoder = RaptorDecoder::with_iterations(self.bp_iterations);
        let demapper = Demapper::new(Qam::new(self.qam_bits));
        let bps = self.qam_bits as usize;

        let mut rng = StdRng::seed_from_u64(seed);
        let msg: Vec<bool> = (0..self.k).map(|_| rng.gen()).collect();
        let inter = code.precode(&msg);

        let mut ch = AwgnChannel::new(snr_db, seed.wrapping_add(0x4A77));
        let noise_power = 1.0 / ch.snr();

        let capacity = awgn_capacity_db(snr_db);
        let ideal_symbols = self.k as f64 / capacity;
        let max_symbols = (ideal_symbols * self.max_overhead) as usize;
        // First attempt slightly below the ideal point (lucky noise);
        // then multiplicative growth.
        let mut next_attempt = (ideal_symbols * 0.95) as usize;

        let mut llrs: Vec<f64> = Vec::new();
        let mut sent_symbols = 0usize;
        while sent_symbols < max_symbols {
            let target = next_attempt.clamp(sent_symbols + 1, max_symbols);
            let add = target - sent_symbols;
            // Encode exactly the LT bits these symbols carry.
            let bits = code.coded_bits(&inter, (sent_symbols * bps) as u64, add * bps);
            let tx = demapper.qam().modulate(&bits);
            let rx = ch.transmit(&tx);
            llrs.extend(demapper.llrs_block(&rx, noise_power));
            sent_symbols = target;

            let out = decoder.decode(&code, &llrs);
            if out.message == msg {
                return Trial::success(self.k, sent_symbols);
            }
            next_attempt = ((sent_symbols as f64) * self.attempt_growth) as usize + 1;
        }
        Trial::failure(self.k, sent_symbols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::summarize;

    #[test]
    fn decodes_across_snrs_below_capacity() {
        // Small k for test speed; the engine must deliver a rate in
        // (0, capacity].
        let run = RaptorRun::new(800, 8);
        for snr in [10.0, 20.0] {
            let trials: Vec<Trial> = (0..2).map(|s| run.run_trial(snr, s)).collect();
            let sum = summarize(snr, &trials);
            assert_eq!(sum.successes, 2, "snr {snr}");
            assert!(sum.rate > 0.0 && sum.rate <= awgn_capacity_db(snr) + 1e-9);
        }
    }

    #[test]
    fn rate_grows_with_snr() {
        let run = RaptorRun::new(800, 8);
        let lo = summarize(5.0, &[run.run_trial(5.0, 1)]);
        let hi = summarize(25.0, &[run.run_trial(25.0, 1)]);
        assert!(hi.rate > lo.rate);
    }

    #[test]
    fn qam64_caps_at_six_bits() {
        // At very high SNR the QAM-64 constellation bottlenecks below 6
        // bits/symbol — the effect the paper reports (54% worse at high
        // SNR).
        let run = RaptorRun::new(800, 6);
        let t = run.run_trial(33.0, 2);
        let s = t.symbols.expect("should decode at 33 dB");
        let rate = 800.0 / s as f64;
        assert!(rate <= 6.0, "rate {rate} exceeds the QAM-64 bit cap");
        assert!(rate > 3.0, "rate {rate} implausibly low at 33 dB");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = RaptorRun::new(600, 8);
        assert_eq!(run.run_trial(15.0, 9), run.run_trial(15.0, 9));
    }
}
