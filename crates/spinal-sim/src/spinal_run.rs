//! Rateless trial runner for spinal codes: the §8.1 engine loop of
//! stream → channel → buffer → attempt, measuring symbols-to-decode.

use crate::stats::Trial;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spinal_channel::capacity::{awgn_capacity_db, bsc_capacity, rayleigh_ergodic_capacity_db};
use spinal_channel::{AwgnChannel, BitChannel, BscChannel, Channel, RayleighChannel};
use spinal_core::{
    BubbleDecoder, CodeParams, DecodeEngine, DecodeRequest, DecodeWorkspace, Encoder, Message,
    MetricProfile, RxBits, RxSymbols, Schedule, TableCache,
};

/// How a trial's decode attempts are dispatched: through a caller-held
/// workspace (serial, the sweep default) or through a shared
/// [`DecodeEngine`] (intra-block parallel). The engine path is
/// bit-for-bit identical to the workspace path at every thread count —
/// the decoder's reductions are order-independent — so the choice is
/// purely about hardware utilisation. Both shapes are expressed as one
/// [`DecodeRequest`] per attempt; this alias only names the resources a
/// trial threads through its attempt loop.
///
/// Symbol decodes go through a per-trial [`TableCache`]: branch-metric
/// tables are additive over observations, so each attempt folds in only
/// the symbols received since the previous attempt instead of rebuilding
/// every table from the whole buffer (bit-identical by construction).
struct Dispatch<'a> {
    ws: Option<&'a mut DecodeWorkspace>,
    engine: Option<&'a DecodeEngine>,
}

impl Dispatch<'_> {
    fn request<'r>(
        &'r mut self,
        decoder: &'r BubbleDecoder,
        rx: impl Into<spinal_core::RxObservations<'r>>,
    ) -> DecodeRequest<'r> {
        let mut req = DecodeRequest::new(decoder, rx);
        if let Some(ws) = self.ws.as_deref_mut() {
            req = req.workspace(ws);
        }
        if let Some(engine) = self.engine {
            req = req.engine(engine);
        }
        req
    }
}

/// Which link model a spinal trial runs over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkChannel {
    /// Pure AWGN (§8.2).
    Awgn,
    /// Rayleigh block fading with coherence `tau`; `csi` selects whether
    /// the decoder receives the exact coefficients (Fig 8-4) or decodes
    /// blind with the AWGN metric (Fig 8-5).
    Rayleigh {
        /// Coherence time in symbols.
        tau: usize,
        /// Give the decoder exact channel-state information.
        csi: bool,
    },
}

/// Configuration of a spinal rateless run.
#[derive(Debug, Clone)]
pub struct SpinalRun {
    /// Code parameters.
    pub params: CodeParams,
    /// Channel model.
    pub channel: LinkChannel,
    /// Give-up cap in passes.
    pub max_passes: usize,
    /// Skip decode attempts that are information-theoretically hopeless
    /// (rate implied > capacity/0.6). Never affects the measured symbol
    /// count at success — attempts still happen at every subpass boundary
    /// inside the feasible region. Disable to validate (see DESIGN.md).
    pub oracle_skip: bool,
    /// Fault injection: probability that a whole subpass transmission is
    /// erased (lost frame). The receiver skips the schedule positions.
    pub erasure_prob: f64,
    /// Attempt thinning for sweeps: after a failed attempt, wait until
    /// this factor more symbols have arrived before attempting again.
    /// `1.0` (default) attempts at every subpass boundary, as the paper
    /// does; `1.02` changes measured symbol counts by at most 2% while
    /// cutting low-SNR sweep time by an order of magnitude.
    pub attempt_growth: f64,
    /// Metric profile for every decode attempt: exact `f64` (default)
    /// or the quantized integer fast path (statistically equivalent,
    /// ~1.7× faster decodes on the recording host — see the
    /// `spinal-core::quant` docs and the committed bench baselines).
    pub profile: MetricProfile,
}

impl SpinalRun {
    /// A run with the paper's defaults over AWGN.
    pub fn new(params: CodeParams) -> Self {
        SpinalRun {
            params,
            channel: LinkChannel::Awgn,
            max_passes: 48,
            oracle_skip: true,
            erasure_prob: 0.0,
            attempt_growth: 1.0,
            profile: MetricProfile::Exact,
        }
    }

    /// Select the decode metric profile (see [`SpinalRun::profile`]).
    pub fn with_profile(mut self, profile: MetricProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Set the attempt-thinning factor (see [`SpinalRun::attempt_growth`]).
    pub fn with_attempt_growth(mut self, g: f64) -> Self {
        assert!(g >= 1.0);
        self.attempt_growth = g;
        self
    }

    /// Select the channel model.
    pub fn with_channel(mut self, channel: LinkChannel) -> Self {
        self.channel = channel;
        self
    }

    /// Set the give-up cap.
    pub fn with_max_passes(mut self, p: usize) -> Self {
        self.max_passes = p;
        self
    }

    /// Enable/disable the feasibility skip.
    pub fn with_oracle_skip(mut self, on: bool) -> Self {
        self.oracle_skip = on;
        self
    }

    /// Enable frame-erasure fault injection.
    pub fn with_erasures(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p));
        self.erasure_prob = p;
        self
    }

    /// Capacity bound used for feasibility skipping and fraction-of-
    /// capacity accounting.
    pub fn capacity(&self, snr_db: f64) -> f64 {
        match self.channel {
            LinkChannel::Awgn => awgn_capacity_db(snr_db),
            LinkChannel::Rayleigh { .. } => rayleigh_ergodic_capacity_db(snr_db),
        }
    }

    /// Run one message trial at `snr_db`; deterministic in `seed`.
    ///
    /// Allocates a fresh [`DecodeWorkspace`] for the trial (reused across
    /// the trial's decode attempts). Sweeps issuing many trials should
    /// hold one workspace per worker and call
    /// [`SpinalRun::run_trial_with_workspace`].
    pub fn run_trial(&self, snr_db: f64, seed: u64) -> Trial {
        self.run_trial_with_workspace(snr_db, seed, &mut DecodeWorkspace::new())
    }

    /// [`SpinalRun::run_trial`] decoding through the caller's workspace,
    /// so the §7.1 attempt loop — and, across calls, a whole sweep —
    /// performs no decode-path allocation after warm-up.
    pub fn run_trial_with_workspace(
        &self,
        snr_db: f64,
        seed: u64,
        ws: &mut DecodeWorkspace,
    ) -> Trial {
        self.run_trial_via(
            snr_db,
            seed,
            Dispatch {
                ws: Some(ws),
                engine: None,
            },
        )
    }

    /// [`SpinalRun::run_trial`] with every decode attempt dispatched
    /// through a [`DecodeEngine`], sharding each attempt's beam across
    /// the engine's workers. Identical trial outcomes (bit-for-bit) to
    /// the workspace path; use when trials are too few to saturate the
    /// machine on their own — e.g. the inner budget handed out by
    /// [`crate::threads::Threads::split`].
    pub fn run_trial_with_engine(&self, snr_db: f64, seed: u64, engine: &DecodeEngine) -> Trial {
        self.run_trial_via(
            snr_db,
            seed,
            Dispatch {
                ws: None,
                engine: Some(engine),
            },
        )
    }

    fn run_trial_via(&self, snr_db: f64, seed: u64, mut via: Dispatch<'_>) -> Trial {
        let p = &self.params;
        let mut rng = StdRng::seed_from_u64(seed);
        let msg = Message::random(p.n, || rng.gen());
        let mut enc = Encoder::new(p, &msg);
        let schedule = Schedule::new(p.num_spines(), p.tail, p.puncturing);
        let mut rx = RxSymbols::new(schedule.clone());
        let decoder = BubbleDecoder::new(p).with_profile(self.profile);
        // Branch-metric tables are additive over observations: one cache
        // per trial means each attempt builds tables only for the
        // symbols that arrived since the last attempt.
        let mut cache = TableCache::new();

        let max_symbols = self.max_passes * schedule.symbols_per_pass();
        let boundaries = schedule.subpass_boundaries(max_symbols);
        let min_attempt = if self.oracle_skip {
            (p.n as f64 / self.capacity(snr_db) * 0.6) as usize
        } else {
            0
        };

        let mut awgn;
        let mut rayleigh;
        let (ch, csi): (&mut dyn Channel, bool) = match self.channel {
            LinkChannel::Awgn => {
                awgn = AwgnChannel::new(snr_db, seed.wrapping_add(0xC11A));
                (&mut awgn, false)
            }
            LinkChannel::Rayleigh { tau, csi } => {
                rayleigh = RayleighChannel::new(snr_db, tau, seed.wrapping_add(0xC11A));
                (&mut rayleigh, csi)
            }
        };

        let mut sent = 0usize;
        let mut tx_index = 0usize; // symbols transmitted, for CSI lookup
        let mut next_attempt = 0usize;
        // Per-trial scratch reused across subpasses: the CSI vector and
        // the phase-rotated symbol vector would otherwise be collected
        // fresh on every subpass of every trial.
        let mut hs_buf: Vec<spinal_channel::Complex> = Vec::new();
        let mut rot_buf: Vec<spinal_channel::Complex> = Vec::new();
        for &boundary in &boundaries {
            let chunk = boundary - sent;
            let tx = enc.next_symbols(chunk);
            sent = boundary;
            if self.erasure_prob > 0.0 && rng.gen::<f64>() < self.erasure_prob {
                // Whole subpass lost before the receiver; positions skip.
                tx_index += chunk;
                rx.skip(chunk);
                // Still a legitimate attempt point for what has arrived.
            } else {
                let ys = ch.transmit(&tx);
                if csi {
                    hs_buf.clear();
                    hs_buf.extend(
                        (0..ys.len()).map(|i| ch.csi(tx_index + i).expect("csi for sent symbol")),
                    );
                    rx.push_with_csi(&ys, &hs_buf);
                } else if matches!(self.channel, LinkChannel::Rayleigh { .. }) {
                    // "No fading information" (Fig 8-5) still assumes the
                    // PHY's carrier recovery locks phase — with a
                    // uniform-phase h and no phase reference, *no*
                    // decoder can extract information. The decoder stays
                    // amplitude-blind: plain AWGN metric on the
                    // phase-corrected observations.
                    rot_buf.clear();
                    rot_buf.extend(ys.iter().enumerate().map(|(i, y)| {
                        let h = ch.csi(tx_index + i).expect("phase reference");
                        *y * h.conj() / h.abs()
                    }));
                    rx.push(&rot_buf);
                } else {
                    rx.push(&ys);
                }
                tx_index += chunk;
            }

            if sent < min_attempt || rx.symbols_received() == 0 {
                continue;
            }
            if sent < next_attempt {
                continue;
            }
            if via
                .request(&decoder, &rx)
                .cache(&mut cache)
                .decode()
                .message
                == msg
            {
                return Trial::success(p.n, sent);
            }
            next_attempt = ((sent as f64) * self.attempt_growth) as usize;
        }
        Trial::failure(p.n, sent)
    }
}

/// One BSC trial: same loop over hard bits (§4, decode with Hamming
/// metric).
pub fn run_bsc_trial(
    params: &CodeParams,
    flip_p: f64,
    max_passes: usize,
    oracle_skip: bool,
    seed: u64,
) -> Trial {
    run_bsc_trial_with_workspace(
        params,
        flip_p,
        max_passes,
        oracle_skip,
        seed,
        &mut DecodeWorkspace::new(),
    )
}

/// [`run_bsc_trial`] decoding through the caller's workspace (see
/// [`SpinalRun::run_trial_with_workspace`]).
pub fn run_bsc_trial_with_workspace(
    params: &CodeParams,
    flip_p: f64,
    max_passes: usize,
    oracle_skip: bool,
    seed: u64,
    ws: &mut DecodeWorkspace,
) -> Trial {
    run_bsc_trial_via(
        params,
        flip_p,
        max_passes,
        oracle_skip,
        seed,
        MetricProfile::Exact,
        Dispatch {
            ws: Some(ws),
            engine: None,
        },
    )
}

/// [`run_bsc_trial_with_workspace`] under an explicit metric profile
/// (the `--metric` flag of the BSC experiment binaries).
pub fn run_bsc_trial_with_profile(
    params: &CodeParams,
    flip_p: f64,
    max_passes: usize,
    oracle_skip: bool,
    seed: u64,
    profile: MetricProfile,
    ws: &mut DecodeWorkspace,
) -> Trial {
    run_bsc_trial_via(
        params,
        flip_p,
        max_passes,
        oracle_skip,
        seed,
        profile,
        Dispatch {
            ws: Some(ws),
            engine: None,
        },
    )
}

/// [`run_bsc_trial`] decoding through a [`DecodeEngine`] (see
/// [`SpinalRun::run_trial_with_engine`]).
pub fn run_bsc_trial_with_engine(
    params: &CodeParams,
    flip_p: f64,
    max_passes: usize,
    oracle_skip: bool,
    seed: u64,
    engine: &DecodeEngine,
) -> Trial {
    run_bsc_trial_via(
        params,
        flip_p,
        max_passes,
        oracle_skip,
        seed,
        MetricProfile::Exact,
        Dispatch {
            ws: None,
            engine: Some(engine),
        },
    )
}

fn run_bsc_trial_via(
    params: &CodeParams,
    flip_p: f64,
    max_passes: usize,
    oracle_skip: bool,
    seed: u64,
    profile: MetricProfile,
    mut via: Dispatch<'_>,
) -> Trial {
    let mut rng = StdRng::seed_from_u64(seed);
    let msg = Message::random(params.n, || rng.gen());
    let mut enc = Encoder::new(params, &msg);
    let schedule = Schedule::new(params.num_spines(), params.tail, params.puncturing);
    let mut rx = RxBits::new(schedule.clone());
    let decoder = BubbleDecoder::new(params).with_profile(profile);
    let mut ch = BscChannel::new(flip_p, seed.wrapping_add(0xB5C));

    let max_symbols = max_passes * schedule.symbols_per_pass();
    let boundaries = schedule.subpass_boundaries(max_symbols);
    let min_attempt = if oracle_skip {
        (params.n as f64 / bsc_capacity(flip_p).max(1e-3) * 0.6) as usize
    } else {
        0
    };

    let mut sent = 0usize;
    for &boundary in &boundaries {
        let chunk = boundary - sent;
        let tx = enc.next_bits(chunk);
        rx.push(&ch.transmit_bits(&tx));
        sent = boundary;
        if sent < min_attempt {
            continue;
        }
        if via.request(&decoder, &rx).decode().message == msg {
            return Trial::success(params.n, sent);
        }
    }
    Trial::failure(params.n, sent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::summarize;

    fn fast_params() -> CodeParams {
        CodeParams::default().with_n(96).with_b(64)
    }

    #[test]
    fn awgn_trial_succeeds_and_rate_is_sane() {
        let run = SpinalRun::new(fast_params());
        let trials: Vec<Trial> = (0..4).map(|s| run.run_trial(15.0, s)).collect();
        let sum = summarize(15.0, &trials);
        assert_eq!(sum.successes, 4);
        // At 15 dB capacity is 5.03; spinal with k=4 should land between
        // 2 and 5.03 bits/symbol.
        assert!(
            sum.rate > 2.0 && sum.rate < 5.03,
            "rate {} out of band",
            sum.rate
        );
    }

    #[test]
    fn rate_increases_with_snr() {
        let run = SpinalRun::new(fast_params());
        let lo = summarize(
            0.0,
            &(0..3).map(|s| run.run_trial(0.0, s)).collect::<Vec<_>>(),
        );
        let hi = summarize(
            20.0,
            &(0..3).map(|s| run.run_trial(20.0, s)).collect::<Vec<_>>(),
        );
        assert!(hi.rate > lo.rate, "hi {} vs lo {}", hi.rate, lo.rate);
    }

    #[test]
    fn oracle_skip_does_not_change_outcome() {
        let with = SpinalRun::new(fast_params()).with_oracle_skip(true);
        let without = SpinalRun::new(fast_params()).with_oracle_skip(false);
        for seed in 0..3 {
            let a = with.run_trial(12.0, seed);
            let b = without.run_trial(12.0, seed);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = SpinalRun::new(fast_params());
        assert_eq!(run.run_trial(8.0, 7), run.run_trial(8.0, 7));
    }

    #[test]
    fn quantized_profile_trials_decode_and_are_dispatch_invariant() {
        // The quantized fast path must (a) actually decode at sane
        // rates and (b) measure identical trials through the workspace
        // and engine dispatch paths at several thread budgets.
        let run = SpinalRun::new(fast_params()).with_profile(MetricProfile::Quantized);
        let mut ws = DecodeWorkspace::new();
        let mut ok = 0;
        for (snr, seed) in [(15.0, 1u64), (8.0, 2), (12.0, 3)] {
            let base = run.run_trial(snr, seed);
            if base.symbols.is_some() {
                ok += 1;
            }
            assert_eq!(base, run.run_trial_with_workspace(snr, seed, &mut ws));
            for threads in [1, 2, 4] {
                let engine = DecodeEngine::new(threads);
                assert_eq!(
                    base,
                    run.run_trial_with_engine(snr, seed, &engine),
                    "threads {threads} snr {snr}"
                );
            }
        }
        assert_eq!(ok, 3, "quantized trials should decode at these SNRs");
        // BSC: quantized Hamming is the same integer computation.
        let p = fast_params();
        for seed in 0..2 {
            assert_eq!(
                run_bsc_trial_with_profile(
                    &p,
                    0.03,
                    30,
                    true,
                    seed,
                    MetricProfile::Quantized,
                    &mut ws
                ),
                run_bsc_trial(&p, 0.03, 30, true, seed),
                "bsc seed {seed}"
            );
        }
    }

    #[test]
    fn workspace_reuse_across_trials_matches_fresh() {
        // One workspace carried across heterogeneous trials (different
        // SNRs and seeds, AWGN and BSC) must change nothing.
        let run = SpinalRun::new(fast_params());
        let mut ws = DecodeWorkspace::new();
        for (snr, seed) in [(15.0, 1u64), (8.0, 2), (20.0, 3), (6.0, 4)] {
            assert_eq!(
                run.run_trial_with_workspace(snr, seed, &mut ws),
                run.run_trial(snr, seed),
                "snr {snr} seed {seed}"
            );
        }
        let p = fast_params();
        for seed in 0..3 {
            assert_eq!(
                run_bsc_trial_with_workspace(&p, 0.03, 30, true, seed, &mut ws),
                run_bsc_trial(&p, 0.03, 30, true, seed),
                "bsc seed {seed}"
            );
        }
    }

    #[test]
    fn engine_trials_match_workspace_trials_bit_for_bit() {
        // The engine path (intra-block parallel decode) must measure the
        // exact same trials as the serial workspace path, at several
        // thread budgets, over both metric kinds.
        let run = SpinalRun::new(fast_params());
        let p = fast_params();
        for threads in [1, 2, 4] {
            let engine = DecodeEngine::new(threads);
            for (snr, seed) in [(15.0, 1u64), (8.0, 2), (6.0, 3)] {
                assert_eq!(
                    run.run_trial_with_engine(snr, seed, &engine),
                    run.run_trial(snr, seed),
                    "threads {threads} snr {snr} seed {seed}"
                );
            }
            assert_eq!(
                run_bsc_trial_with_engine(&p, 0.03, 30, true, 5, &engine),
                run_bsc_trial(&p, 0.03, 30, true, 5),
                "bsc threads {threads}"
            );
        }
    }

    #[test]
    fn fading_with_csi_decodes() {
        let run = SpinalRun::new(fast_params())
            .with_channel(LinkChannel::Rayleigh { tau: 10, csi: true });
        let t = run.run_trial(20.0, 3);
        assert!(t.symbols.is_some(), "fading trial failed");
    }

    #[test]
    fn csi_beats_blind_decoding() {
        let csi = SpinalRun::new(fast_params())
            .with_channel(LinkChannel::Rayleigh { tau: 10, csi: true });
        let blind = SpinalRun::new(fast_params()).with_channel(LinkChannel::Rayleigh {
            tau: 10,
            csi: false,
        });
        let mut csi_syms = 0usize;
        let mut blind_syms = 0usize;
        let mut csi_fail = 0;
        let mut blind_fail = 0;
        for seed in 0..6 {
            match csi.run_trial(15.0, seed).symbols {
                Some(s) => csi_syms += s,
                None => csi_fail += 1,
            }
            match blind.run_trial(15.0, seed).symbols {
                Some(s) => blind_syms += s,
                None => blind_fail += 1,
            }
        }
        assert!(
            blind_fail > csi_fail || blind_syms > csi_syms,
            "CSI should help: csi=({csi_syms},{csi_fail}) blind=({blind_syms},{blind_fail})"
        );
    }

    #[test]
    fn erasures_cost_symbols_but_not_correctness() {
        let run = SpinalRun::new(fast_params()).with_erasures(0.3);
        let clean = SpinalRun::new(fast_params());
        let mut lossy_total = 0usize;
        let mut clean_total = 0usize;
        let mut ok = 0;
        for seed in 0..5 {
            if let Some(s) = run.run_trial(15.0, seed).symbols {
                ok += 1;
                lossy_total += s;
            }
            clean_total += clean.run_trial(15.0, seed).symbols.unwrap();
        }
        assert!(ok >= 4, "erasures should not prevent decoding");
        assert!(
            lossy_total > clean_total,
            "erasures must cost channel time: {lossy_total} vs {clean_total}"
        );
    }

    #[test]
    fn attempt_thinning_changes_symbols_only_slightly() {
        let dense = SpinalRun::new(fast_params());
        let thin = SpinalRun::new(fast_params()).with_attempt_growth(1.05);
        for seed in 0..3 {
            let a = dense.run_trial(10.0, seed).symbols.unwrap() as f64;
            let b = thin.run_trial(10.0, seed).symbols.unwrap() as f64;
            assert!(b >= a, "thinning can only delay detection");
            assert!(b <= a * 1.12 + 12.0, "seed {seed}: {a} vs {b}");
        }
    }

    #[test]
    fn bsc_trial_decodes() {
        let p = fast_params();
        // Capacity at p=0.05 is 0.71 bits/use. A single 96-bit block can
        // "beat" that with a lucky noise draw (capacity is asymptotic),
        // so assert on the mean rate across seeds instead of one trial.
        let mut decoded_bits = 0usize;
        let mut used_symbols = 0usize;
        let mut ok = 0;
        for seed in 0..8 {
            if let Some(s) = run_bsc_trial(&p, 0.05, 40, true, seed).symbols {
                ok += 1;
                decoded_bits += 96;
                used_symbols += s;
            }
        }
        assert!(ok >= 6, "BSC trials should mostly decode ({ok}/8)");
        let mean_rate = decoded_bits as f64 / used_symbols as f64;
        assert!(
            mean_rate <= 0.72,
            "mean rate {mean_rate} beats BSC capacity"
        );
    }

    #[test]
    fn gives_up_below_minus_ten_db_quickly() {
        let run = SpinalRun::new(fast_params()).with_max_passes(4);
        let t = run.run_trial(-15.0, 1);
        assert!(t.symbols.is_none(), "cannot decode at −15 dB in 4 passes");
    }
}
