//! Link-layer pause-point simulation (§6).
//!
//! A rateless sender over a half-duplex radio cannot hear feedback while
//! transmitting: it sends a burst of symbols, pauses, and the receiver
//! ACKs (costing channel time). Too-small bursts drown in feedback
//! overhead; too-large bursts overshoot the decoding point. The paper
//! defers the full algorithm to follow-on work (thesis ref. \[16\]); this module
//! implements the mechanism so the trade-off itself is measurable.

use crate::spinal_run::SpinalRun;
use crate::stats::Trial;
use spinal_core::{DecodeEngine, DecodeWorkspace};

/// Configuration of the half-duplex feedback loop.
#[derive(Debug, Clone)]
pub struct LinkLayerRun {
    /// The underlying rateless spinal run (code + channel).
    pub run: SpinalRun,
    /// Burst length in symbols between pauses.
    pub burst_symbols: usize,
    /// Channel time consumed by each pause + ACK, in symbol durations
    /// (SIFS + ACK at base rate; a handful of OFDM symbols in 802.11
    /// terms).
    pub feedback_symbols: usize,
}

/// Outcome of one framed transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkOutcome {
    /// Data symbols actually transmitted.
    pub data_symbols: usize,
    /// Feedback rounds used.
    pub rounds: usize,
    /// Effective throughput: message bits over (data + feedback) time.
    pub effective_rate: f64,
    /// Whether the block decoded within the give-up cap.
    pub delivered: bool,
}

impl LinkLayerRun {
    /// Simulate one block transfer at `snr_db`.
    ///
    /// The sender transmits bursts; the receiver can only signal
    /// completion at a pause. The decode point is whatever the
    /// underlying rateless trial measures; the burst structure rounds it
    /// *up* to the end of the burst in which decoding happened.
    pub fn run_trial(&self, snr_db: f64, seed: u64) -> LinkOutcome {
        self.run_trial_with_workspace(snr_db, seed, &mut DecodeWorkspace::new())
    }

    /// [`LinkLayerRun::run_trial`] decoding through the caller's
    /// workspace (one per worker thread in sweeps).
    pub fn run_trial_with_workspace(
        &self,
        snr_db: f64,
        seed: u64,
        ws: &mut DecodeWorkspace,
    ) -> LinkOutcome {
        let trial = self.run.run_trial_with_workspace(snr_db, seed, ws);
        self.frame_outcome(trial)
    }

    /// [`LinkLayerRun::run_trial`] with decode attempts dispatched
    /// through a shared [`DecodeEngine`] (intra-block parallelism);
    /// identical outcomes to the workspace path at every thread count.
    pub fn run_trial_with_engine(
        &self,
        snr_db: f64,
        seed: u64,
        engine: &DecodeEngine,
    ) -> LinkOutcome {
        let trial = self.run.run_trial_with_engine(snr_db, seed, engine);
        self.frame_outcome(trial)
    }

    /// Fold a rateless trial into the burst/feedback frame accounting.
    fn frame_outcome(&self, trial: Trial) -> LinkOutcome {
        assert!(self.burst_symbols > 0);
        match trial.symbols {
            Some(decode_point) => {
                let rounds = decode_point.div_ceil(self.burst_symbols);
                let data_symbols = rounds * self.burst_symbols;
                let total = data_symbols + rounds * self.feedback_symbols;
                LinkOutcome {
                    data_symbols,
                    rounds,
                    effective_rate: trial.n_bits as f64 / total as f64,
                    delivered: true,
                }
            }
            None => {
                let rounds = trial.spent_on_failure.div_ceil(self.burst_symbols).max(1);
                LinkOutcome {
                    data_symbols: rounds * self.burst_symbols,
                    rounds,
                    effective_rate: 0.0,
                    delivered: false,
                }
            }
        }
    }

    /// The idealised rate with free, instantaneous feedback (the number
    /// every figure in §8 reports).
    pub fn ideal_rate(&self, snr_db: f64, seed: u64) -> f64 {
        self.ideal_rate_with_workspace(snr_db, seed, &mut DecodeWorkspace::new())
    }

    /// [`LinkLayerRun::ideal_rate`] decoding through the caller's
    /// workspace.
    pub fn ideal_rate_with_workspace(
        &self,
        snr_db: f64,
        seed: u64,
        ws: &mut DecodeWorkspace,
    ) -> f64 {
        match self.run.run_trial_with_workspace(snr_db, seed, ws).symbols {
            Some(s) => self.run.params.n as f64 / s as f64,
            None => 0.0,
        }
    }

    /// [`LinkLayerRun::ideal_rate`] decoding through a shared
    /// [`DecodeEngine`].
    pub fn ideal_rate_with_engine(&self, snr_db: f64, seed: u64, engine: &DecodeEngine) -> f64 {
        match self.run.run_trial_with_engine(snr_db, seed, engine).symbols {
            Some(s) => self.run.params.n as f64 / s as f64,
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinal_core::CodeParams;

    fn base() -> SpinalRun {
        SpinalRun::new(CodeParams::default().with_n(96).with_b(64))
    }

    #[test]
    fn feedback_overhead_reduces_rate() {
        let ll = LinkLayerRun {
            run: base(),
            burst_symbols: 16,
            feedback_symbols: 4,
        };
        let out = ll.run_trial(15.0, 3);
        assert!(out.delivered);
        let ideal = ll.ideal_rate(15.0, 3);
        assert!(
            out.effective_rate < ideal,
            "feedback must cost something: {} vs {ideal}",
            out.effective_rate
        );
        assert!(
            out.effective_rate > 0.5 * ideal,
            "overhead implausibly high"
        );
    }

    #[test]
    fn burst_size_trade_off_exists() {
        // Tiny bursts pay feedback per round; huge bursts overshoot the
        // decode point. Both must underperform a moderate burst.
        let snr = 15.0;
        let mk = |burst| LinkLayerRun {
            run: base(),
            burst_symbols: burst,
            feedback_symbols: 6,
        };
        let avg = |burst: usize| -> f64 {
            (0..6)
                .map(|s| mk(burst).run_trial(snr, s).effective_rate)
                .sum::<f64>()
                / 6.0
        };
        let tiny = avg(2);
        let moderate = avg(24);
        let huge = avg(2000);
        assert!(
            moderate > tiny,
            "moderate {moderate} should beat tiny-burst {tiny}"
        );
        assert!(
            moderate > huge,
            "moderate {moderate} should beat huge-burst {huge}"
        );
    }

    #[test]
    fn failure_reports_zero_rate_but_charges_time() {
        let ll = LinkLayerRun {
            run: base().with_max_passes(3),
            burst_symbols: 16,
            feedback_symbols: 4,
        };
        let out = ll.run_trial(-15.0, 1);
        assert!(!out.delivered);
        assert_eq!(out.effective_rate, 0.0);
        assert!(out.data_symbols > 0);
    }

    #[test]
    fn engine_trial_matches_workspace_trial() {
        let ll = LinkLayerRun {
            run: base(),
            burst_symbols: 16,
            feedback_symbols: 4,
        };
        for threads in [1, 2, 3] {
            let engine = DecodeEngine::new(threads);
            for seed in 0..3 {
                assert_eq!(
                    ll.run_trial_with_engine(12.0, seed, &engine),
                    ll.run_trial(12.0, seed),
                    "threads {threads} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn rounds_count_matches_bursts() {
        let ll = LinkLayerRun {
            run: base(),
            burst_symbols: 10,
            feedback_symbols: 0,
        };
        let out = ll.run_trial(20.0, 5);
        assert_eq!(out.data_symbols, out.rounds * 10);
    }
}
