//! The LDPC envelope runner (§8.2): per-MCS block trials and the "best
//! envelope" the paper plots against spinal codes.

use spinal_ldpc::{Mcs, McsRunner};

/// Throughput of one MCS at one SNR: information bits per symbol times
/// block success probability (ARQ semantics — failed blocks consume the
/// channel and deliver nothing).
pub fn mcs_throughput(runner: &McsRunner, snr_db: f64, trials: usize, seed: u64) -> f64 {
    let ok = (0..trials)
        .filter(|&t| runner.run_block(snr_db, seed.wrapping_add(t as u64)))
        .count();
    runner.mcs().info_bits_per_symbol() * ok as f64 / trials as f64
}

/// The envelope: best throughput over the whole MCS family — what an
/// ideal rate adaptation scheme (SoftRate in the paper) would pick.
pub fn envelope(runners: &[McsRunner], snr_db: f64, trials: usize, seed: u64) -> f64 {
    runners
        .iter()
        .map(|r| mcs_throughput(r, snr_db, trials, seed))
        .fold(0.0, f64::max)
}

/// Build runners for the full MCS table (construct once per sweep; code
/// construction does GF(2) elimination).
pub fn all_runners() -> Vec<McsRunner> {
    Mcs::TABLE.iter().map(|&m| McsRunner::new(m)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_is_monotone_in_snr() {
        let runners = all_runners();
        let lo = envelope(&runners, 2.0, 3, 1);
        let hi = envelope(&runners, 24.0, 3, 1);
        assert!(hi > lo, "hi {hi} vs lo {lo}");
        // At 24 dB the top MCS (5 bits/symbol) should be clean.
        assert!((hi - 5.0).abs() < 1e-9, "hi {hi}");
    }

    #[test]
    fn envelope_never_exceeds_top_mcs() {
        let runners = all_runners();
        let e = envelope(&runners, 35.0, 2, 2);
        assert!(e <= 5.0 + 1e-12);
    }

    #[test]
    fn single_mcs_throughput_matches_success_fraction() {
        let runner = McsRunner::new(Mcs::TABLE[1]); // QPSK 1/2 = 1 bit/sym
        let t = mcs_throughput(&runner, 8.0, 4, 3);
        assert!(
            (t - 1.0).abs() < 1e-9,
            "QPSK 1/2 at 8 dB should be clean, got {t}"
        );
    }
}
