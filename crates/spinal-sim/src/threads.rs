//! The single source of truth for thread budgets.
//!
//! Before this module, every consumer read thread counts its own way
//! (each bench binary parsed `--threads` with its own default, sweeps
//! took a bare `usize`, and nothing honoured an environment override).
//! [`Threads`] unifies the policy:
//!
//! * precedence: CLI `--threads` value > `SPINAL_THREADS` env var >
//!   `std::thread::available_parallelism()`;
//! * clamping: a budget is always ≥ 1 (0 means "serial", not "none")
//!   and capped at [`Threads::MAX`] to keep a typo like
//!   `SPINAL_THREADS=1000000` from fork-bombing the host;
//! * parse errors name the offending source and value instead of
//!   panicking.
//!
//! The same budget feeds both layers of parallelism:
//! [`run_parallel_with`](crate::sweep::run_parallel_with) for
//! trial-level fan-out and `spinal_core::DecodeEngine` for block-level
//! fan-out. [`Threads::split`] divides one budget across the two layers
//! so they compose without oversubscribing cores.

/// A validated thread budget (always `1 ..= Threads::MAX`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threads(usize);

impl Threads {
    /// Upper clamp on any budget — far above real core counts, low
    /// enough that a malformed override cannot spawn unbounded threads.
    pub const MAX: usize = 1024;

    /// A budget of exactly `n`, clamped into `1 ..= MAX`.
    pub fn new(n: usize) -> Self {
        Threads(n.clamp(1, Self::MAX))
    }

    /// The host's available parallelism (the default budget).
    pub fn available() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }

    /// Resolve a budget from an already-parsed CLI value, honouring the
    /// `SPINAL_THREADS` environment override. Errors (a malformed env
    /// value) name the variable and value.
    pub fn resolve(cli: Option<usize>) -> Result<Self, String> {
        Self::from_parts(
            cli,
            std::env::var("SPINAL_THREADS").ok().as_deref(),
            Self::available(),
        )
    }

    /// The pure resolution rule behind [`Threads::resolve`], with the
    /// environment and default passed in so tests cover every branch
    /// without mutating process state.
    pub fn from_parts(
        cli: Option<usize>,
        env: Option<&str>,
        default: usize,
    ) -> Result<Self, String> {
        if let Some(n) = cli {
            return Ok(Self::new(n));
        }
        if let Some(raw) = env {
            let n: usize = raw.trim().parse().map_err(|_| {
                format!(
                    "invalid value for SPINAL_THREADS: '{raw}' (expected a non-negative integer)"
                )
            })?;
            return Ok(Self::new(n));
        }
        Ok(Self::new(default))
    }

    /// The budget as a plain count.
    pub fn get(self) -> usize {
        self.0
    }

    /// Split this budget between trial-level workers and a per-worker
    /// decode-engine budget: `(outer, inner)` with `outer·inner ≤
    /// budget` (and `outer ≤ jobs`). With many jobs the whole budget
    /// goes to the outer sweep (`inner = 1`, today's behaviour); with
    /// fewer jobs than cores the leftover cores turn into intra-block
    /// decode threads, so small grids still fill the machine.
    pub fn split(self, jobs: usize) -> (usize, Threads) {
        let outer = self.0.min(jobs.max(1));
        (outer, Threads::new(self.0 / outer))
    }
}

impl Default for Threads {
    /// The environment-resolved budget, falling back to the host default
    /// if `SPINAL_THREADS` is malformed.
    fn default() -> Self {
        Self::resolve(None).unwrap_or_else(|_| Self::new(Self::available()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_wins_over_env_and_default() {
        let t = Threads::from_parts(Some(3), Some("7"), 12).unwrap();
        assert_eq!(t.get(), 3);
    }

    #[test]
    fn env_wins_over_default() {
        assert_eq!(Threads::from_parts(None, Some("7"), 12).unwrap().get(), 7);
        assert_eq!(Threads::from_parts(None, Some(" 2 "), 12).unwrap().get(), 2);
    }

    #[test]
    fn default_used_when_nothing_set() {
        assert_eq!(Threads::from_parts(None, None, 5).unwrap().get(), 5);
    }

    #[test]
    fn zero_clamps_to_one_everywhere() {
        assert_eq!(Threads::new(0).get(), 1);
        assert_eq!(Threads::from_parts(Some(0), None, 8).unwrap().get(), 1);
        assert_eq!(Threads::from_parts(None, Some("0"), 8).unwrap().get(), 1);
        assert_eq!(Threads::from_parts(None, None, 0).unwrap().get(), 1);
    }

    #[test]
    fn huge_values_clamp_to_max() {
        assert_eq!(Threads::new(usize::MAX).get(), Threads::MAX);
        let t = Threads::from_parts(None, Some("1000000"), 4).unwrap();
        assert_eq!(t.get(), Threads::MAX);
    }

    #[test]
    fn malformed_env_names_the_variable_and_value() {
        for bad in ["four", "-2", "3.5", ""] {
            let err = Threads::from_parts(None, Some(bad), 4).unwrap_err();
            assert!(
                err.contains("SPINAL_THREADS") && err.contains(bad),
                "unhelpful message for {bad:?}: {err}"
            );
        }
    }

    #[test]
    fn malformed_env_is_ignored_when_cli_present() {
        // CLI precedence means a broken env var cannot sink an explicit
        // request.
        assert_eq!(
            Threads::from_parts(Some(2), Some("junk"), 4).unwrap().get(),
            2
        );
    }

    #[test]
    fn split_gives_whole_budget_to_big_grids() {
        let (outer, inner) = Threads::new(8).split(1000);
        assert_eq!((outer, inner.get()), (8, 1));
    }

    #[test]
    fn split_turns_leftover_cores_into_engine_threads() {
        let (outer, inner) = Threads::new(8).split(2);
        assert_eq!((outer, inner.get()), (2, 4));
        let (outer, inner) = Threads::new(7).split(3);
        assert_eq!(outer, 3);
        assert_eq!(inner.get(), 2); // 3·2 ≤ 7, no oversubscription
        assert!(outer * inner.get() <= 7);
    }

    #[test]
    fn split_handles_degenerate_inputs() {
        let (outer, inner) = Threads::new(4).split(0);
        assert_eq!((outer, inner.get()), (1, 4));
        let (outer, inner) = Threads::new(1).split(100);
        assert_eq!((outer, inner.get()), (1, 1));
    }
}
