//! Fixed-budget block-error-rate measurement.
//!
//! The rateless runners in [`crate::spinal_run`] measure *symbols to
//! decode*; the analytic upper bounds of `spinal-bounds` are stated the
//! other way around — block-error probability after a *fixed* number of
//! received symbols. This module runs that experiment: transmit exactly
//! `total_symbols` scheduled symbols, decode once, and count a block
//! error when the decoder's message differs from the transmitted one
//! (the same "genie" success test the sweep engine uses). The trial
//! construction mirrors [`crate::spinal_run::SpinalRun::run_trial`] —
//! same seed derivation, same channel wiring — so a BLER point and a
//! rateless point at equal seeds see identical noise.

use crate::spinal_run::LinkChannel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spinal_channel::{AwgnChannel, Channel, Complex, RayleighChannel};
use spinal_core::{
    BubbleDecoder, CodeParams, DecodeEngine, DecodeRequest, DecodeWorkspace, Encoder, Message,
    MetricProfile, RxSymbols, Schedule,
};

/// Fixed-budget BLER experiment configuration.
#[derive(Debug, Clone)]
pub struct BlerRun {
    /// Code parameters.
    pub params: CodeParams,
    /// Channel model (AWGN or Rayleigh, with or without CSI).
    pub channel: LinkChannel,
    /// Metric profile for every decode (exact `f64` by default, or the
    /// quantized integer fast path).
    pub profile: MetricProfile,
}

/// A measured BLER point: `errors / trials`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlerEstimate {
    /// Trials run.
    pub trials: usize,
    /// Trials whose decoded message differed from the transmitted one.
    pub errors: usize,
}

impl BlerEstimate {
    /// The empirical block-error rate.
    pub fn bler(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.errors as f64 / self.trials as f64
        }
    }
}

impl BlerRun {
    /// A BLER run over AWGN with the given code parameters.
    pub fn new(params: CodeParams) -> Self {
        params.validate();
        BlerRun {
            params,
            channel: LinkChannel::Awgn,
            profile: MetricProfile::Exact,
        }
    }

    /// Select the channel model.
    pub fn with_channel(mut self, channel: LinkChannel) -> Self {
        self.channel = channel;
        self
    }

    /// Select the decode metric profile (see [`BlerRun::profile`]).
    pub fn with_profile(mut self, profile: MetricProfile) -> Self {
        self.profile = profile;
        self
    }

    /// The transmission schedule this run follows.
    pub fn schedule(&self) -> Schedule {
        Schedule::new(
            self.params.num_spines(),
            self.params.tail,
            self.params.puncturing,
        )
    }

    /// Construct one trial's transmitted message and received buffer
    /// (deterministic in `seed`): encode a random message, send exactly
    /// `total_symbols` symbols through the channel. One implementation
    /// feeds both the serial and the engine-batched measurement paths,
    /// so they see identical noise realisations. `csi_scratch` is a
    /// reusable buffer for the per-trial CSI / phase-rotation vector
    /// (the same scratch-reuse discipline as the rateless trial loop).
    fn build_trial(
        &self,
        snr_db: f64,
        total_symbols: usize,
        seed: u64,
        csi_scratch: &mut Vec<Complex>,
    ) -> (Message, RxSymbols) {
        let p = &self.params;
        let mut rng = StdRng::seed_from_u64(seed);
        let msg = Message::random(p.n, || rng.gen());
        let mut enc = Encoder::new(p, &msg);
        let mut rx = RxSymbols::new(self.schedule());
        let tx = enc.next_symbols(total_symbols);

        match self.channel {
            LinkChannel::Awgn => {
                let mut ch = AwgnChannel::new(snr_db, seed.wrapping_add(0xC11A));
                rx.push(&ch.transmit(&tx));
            }
            LinkChannel::Rayleigh { tau, csi } => {
                let mut ch = RayleighChannel::new(snr_db, tau, seed.wrapping_add(0xC11A));
                let ys = ch.transmit(&tx);
                csi_scratch.clear();
                if csi {
                    csi_scratch
                        .extend((0..ys.len()).map(|i| ch.csi(i).expect("csi for sent symbol")));
                    rx.push_with_csi(&ys, csi_scratch);
                } else {
                    // Phase-corrected amplitude-blind reception, as in
                    // the Fig 8-5 runner.
                    csi_scratch.extend(ys.iter().enumerate().map(|(i, y)| {
                        let h = ch.csi(i).expect("phase reference");
                        *y * h.conj() / h.abs()
                    }));
                    rx.push(csi_scratch);
                }
            }
        }
        (msg, rx)
    }

    /// The decoder every measurement path uses (profile applied).
    fn decoder(&self) -> BubbleDecoder {
        BubbleDecoder::new(&self.params).with_profile(self.profile)
    }

    /// Run one trial: encode, transmit, decode once. Returns `true` on a
    /// block error.
    pub fn block_error_with_workspace(
        &self,
        snr_db: f64,
        total_symbols: usize,
        seed: u64,
        ws: &mut DecodeWorkspace,
    ) -> bool {
        let (msg, rx) = self.build_trial(snr_db, total_symbols, seed, &mut Vec::new());
        DecodeRequest::new(&self.decoder(), &rx)
            .workspace(ws)
            .decode()
            .message
            != msg
    }

    /// [`BlerRun::block_error_with_workspace`] with a throwaway workspace.
    pub fn block_error(&self, snr_db: f64, total_symbols: usize, seed: u64) -> bool {
        self.block_error_with_workspace(snr_db, total_symbols, seed, &mut DecodeWorkspace::new())
    }

    /// Measure BLER over `trials` seeded trials (`seed_base + i`),
    /// reusing one workspace across them.
    pub fn measure(
        &self,
        snr_db: f64,
        total_symbols: usize,
        trials: usize,
        seed_base: u64,
        ws: &mut DecodeWorkspace,
    ) -> BlerEstimate {
        let decoder = self.decoder();
        let mut scratch = Vec::new();
        let errors = (0..trials)
            .filter(|&i| {
                let (msg, rx) =
                    self.build_trial(snr_db, total_symbols, seed_base + i as u64, &mut scratch);
                DecodeRequest::new(&decoder, &rx)
                    .workspace(ws)
                    .decode()
                    .message
                    != msg
            })
            .count();
        BlerEstimate { trials, errors }
    }

    /// [`BlerRun::measure`] as a batched block pipeline: receive
    /// buffers are constructed in chunks (encode + channel are a small
    /// fraction of decode cost) and each chunk decoded across the
    /// engine's workers via [`DecodeEngine::decode_batch_parallel`] —
    /// every worker reusing its per-core workspace. Chunking bounds
    /// peak memory at a few dozen buffers regardless of `trials`, while
    /// keeping every worker busy. Identical estimate to the serial
    /// [`BlerRun::measure`] at every thread count (same seeds, same
    /// noise, bit-identical decodes).
    pub fn measure_with_engine(
        &self,
        snr_db: f64,
        total_symbols: usize,
        trials: usize,
        seed_base: u64,
        engine: &DecodeEngine,
    ) -> BlerEstimate {
        // Several blocks in flight per worker hides the once-per-chunk
        // serial construction phase.
        let chunk_size = (engine.threads() * 8).clamp(8, 128);
        let decoder = self.decoder();
        let mut errors = 0usize;
        let mut start = 0usize;
        let mut scratch = Vec::new();
        while start < trials {
            let end = (start + chunk_size).min(trials);
            let mut msgs = Vec::with_capacity(end - start);
            let mut rxs = Vec::with_capacity(end - start);
            for i in start..end {
                let (msg, rx) =
                    self.build_trial(snr_db, total_symbols, seed_base + i as u64, &mut scratch);
                msgs.push(msg);
                rxs.push(rx);
            }
            let outs = engine.decode_batch_parallel(&decoder, &rxs);
            errors += msgs
                .iter()
                .zip(&outs)
                .filter(|(msg, out)| out.message != **msg)
                .count();
            start = end;
        }
        BlerEstimate { trials, errors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_params() -> CodeParams {
        CodeParams::default().with_n(64).with_b(64)
    }

    #[test]
    fn high_snr_two_passes_decodes_cleanly() {
        let run = BlerRun::new(fast_params());
        let symbols = 2 * run.schedule().symbols_per_pass();
        let mut ws = DecodeWorkspace::new();
        let est = run.measure(20.0, symbols, 20, 0, &mut ws);
        assert_eq!(est.errors, 0, "bler {}", est.bler());
    }

    #[test]
    fn low_snr_one_pass_fails() {
        let run = BlerRun::new(fast_params());
        let symbols = run.schedule().symbols_per_pass();
        let mut ws = DecodeWorkspace::new();
        let est = run.measure(-10.0, symbols, 10, 0, &mut ws);
        assert!(est.errors >= 9, "bler {} should be ~1", est.bler());
    }

    #[test]
    fn bler_is_monotone_in_snr_on_average() {
        let run = BlerRun::new(fast_params());
        let symbols = 2 * run.schedule().symbols_per_pass();
        let mut ws = DecodeWorkspace::new();
        let lo = run.measure(2.0, symbols, 30, 7, &mut ws);
        let hi = run.measure(14.0, symbols, 30, 7, &mut ws);
        assert!(
            hi.errors <= lo.errors,
            "hi {} > lo {}",
            hi.bler(),
            lo.bler()
        );
    }

    #[test]
    fn deterministic_in_seed_and_workspace_free() {
        let run = BlerRun::new(fast_params());
        let symbols = 2 * run.schedule().symbols_per_pass();
        let mut ws = DecodeWorkspace::new();
        for seed in 0..4 {
            assert_eq!(
                run.block_error_with_workspace(6.0, symbols, seed, &mut ws),
                run.block_error(6.0, symbols, seed),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn engine_measure_matches_serial_measure() {
        // The batched pipeline is an execution strategy, not a different
        // experiment: estimates must be identical at every thread count,
        // on AWGN and fading alike.
        let runs = [
            BlerRun::new(fast_params()),
            BlerRun::new(fast_params()).with_channel(LinkChannel::Rayleigh { tau: 4, csi: true }),
        ];
        for run in &runs {
            let symbols = 2 * run.schedule().symbols_per_pass();
            let mut ws = DecodeWorkspace::new();
            let serial = run.measure(6.0, symbols, 12, 9, &mut ws);
            for threads in [1, 2, 4] {
                let engine = DecodeEngine::new(threads);
                let parallel = run.measure_with_engine(6.0, symbols, 12, 9, &engine);
                assert_eq!(serial, parallel, "threads {threads}");
            }
        }
    }

    #[test]
    fn quantized_profile_measures_identically_across_engines() {
        // The quantized profile is deterministic across dispatch paths:
        // serial and batched-engine BLER estimates must agree exactly at
        // every thread count, on AWGN and fading alike.
        let runs = [
            BlerRun::new(fast_params()).with_profile(MetricProfile::Quantized),
            BlerRun::new(fast_params())
                .with_profile(MetricProfile::Quantized)
                .with_channel(LinkChannel::Rayleigh { tau: 4, csi: true }),
        ];
        for run in &runs {
            let symbols = 2 * run.schedule().symbols_per_pass();
            let mut ws = DecodeWorkspace::new();
            let serial = run.measure(6.0, symbols, 12, 9, &mut ws);
            for threads in [1, 2, 4] {
                let engine = DecodeEngine::new(threads);
                assert_eq!(
                    serial,
                    run.measure_with_engine(6.0, symbols, 12, 9, &engine),
                    "threads {threads}"
                );
            }
        }
    }

    #[test]
    fn rayleigh_csi_and_blind_both_run() {
        let csi =
            BlerRun::new(fast_params()).with_channel(LinkChannel::Rayleigh { tau: 1, csi: true });
        let blind =
            BlerRun::new(fast_params()).with_channel(LinkChannel::Rayleigh { tau: 1, csi: false });
        let symbols = 3 * csi.schedule().symbols_per_pass();
        let mut ws = DecodeWorkspace::new();
        let a = csi.measure(18.0, symbols, 20, 3, &mut ws);
        let b = blind.measure(18.0, symbols, 20, 3, &mut ws);
        // CSI can only help (same seeds, same noise realisations).
        assert!(a.errors <= b.errors, "csi {} blind {}", a.errors, b.errors);
    }

    #[test]
    fn empty_estimate_is_zero() {
        assert_eq!(
            BlerEstimate {
                trials: 0,
                errors: 0
            }
            .bler(),
            0.0
        );
    }
}
