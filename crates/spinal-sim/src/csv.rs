//! Minimal CSV emission for experiment binaries (stdout is the interface;
//! EXPERIMENTS.md records the headline numbers).

use std::fmt::Write as _;

/// Render one CSV row from float cells with fixed precision.
pub fn row(cells: &[f64]) -> String {
    let mut s = String::new();
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{c:.4}");
    }
    s
}

/// Render a header row.
pub fn header(names: &[&str]) -> String {
    names.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_headers() {
        assert_eq!(header(&["snr", "rate"]), "snr,rate");
        assert_eq!(row(&[1.0, 2.25]), "1.0000,2.2500");
        assert_eq!(row(&[]), "");
    }
}
