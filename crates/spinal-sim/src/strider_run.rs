//! Rateless trial runner for Strider and Strider+ (§8 "Strider").

use crate::stats::Trial;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spinal_channel::capacity::awgn_capacity_db;
use spinal_channel::{AwgnChannel, RayleighChannel};
use spinal_strider::{StriderCode, DEFAULT_MAX_PASSES};

/// Channel for a Strider run (mirrors the spinal runner's options).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StriderChannel {
    /// AWGN.
    Awgn,
    /// Rayleigh block fading; `csi` gives the decoder per-symbol
    /// equalisation by the exact coefficient before SIC.
    Rayleigh {
        /// Coherence time in symbols.
        tau: usize,
        /// Equalise with exact CSI before decoding.
        csi: bool,
    },
}

/// Configuration of a Strider run.
#[derive(Debug, Clone)]
pub struct StriderRun {
    /// Message bits (paper: 50490).
    pub n_bits: usize,
    /// Layer count (paper: 33).
    pub layers: usize,
    /// Decode attempts per pass: 1 = plain Strider (pass boundaries
    /// only); 8 = the paper's "Strider+" puncturing enhancement.
    pub attempts_per_pass: usize,
    /// Give-up cap in passes (paper: 27).
    pub max_passes: usize,
    /// Turbo iterations per layer decode.
    pub turbo_iterations: usize,
    /// Soft-SIC sweeps per decode attempt.
    pub sweeps: usize,
    /// Channel model.
    pub channel: StriderChannel,
}

impl StriderRun {
    /// Plain Strider with the paper's defaults (scaled by `n_bits`).
    pub fn new(n_bits: usize, layers: usize) -> Self {
        StriderRun {
            n_bits,
            layers,
            attempts_per_pass: 1,
            max_passes: DEFAULT_MAX_PASSES,
            turbo_iterations: 4,
            sweeps: 5,
            channel: StriderChannel::Awgn,
        }
    }

    /// Enable the puncturing enhancement (Strider+).
    pub fn plus(mut self) -> Self {
        self.attempts_per_pass = 8;
        self
    }

    /// Select the channel model.
    pub fn with_channel(mut self, channel: StriderChannel) -> Self {
        self.channel = channel;
        self
    }

    /// Override turbo iterations.
    pub fn with_turbo_iterations(mut self, it: usize) -> Self {
        self.turbo_iterations = it;
        self
    }

    /// Run one message trial at `snr_db`.
    pub fn run_trial(&self, snr_db: f64, seed: u64) -> Trial {
        let code = StriderCode::new(self.n_bits, self.layers, seed ^ 0x57121DE7)
            .with_turbo_iterations(self.turbo_iterations);
        let mut rng = StdRng::seed_from_u64(seed);
        let msg: Vec<bool> = (0..self.n_bits).map(|_| rng.gen()).collect();
        let mut enc = code.encoder(&msg);
        let decoder = code.decoder().with_sweeps(self.sweeps);

        let n_sym = code.n_sym_per_pass();
        let max_symbols = self.max_passes * n_sym;
        // (2/5)·L bits/symbol at ℓ=1.
        let full_rate = 0.4 * self.layers as f64;
        // Feasibility skip: rate 13.2/ℓ must be ≤ ~capacity to have any
        // chance; skip attempts before that point.
        let capacity = awgn_capacity_db(snr_db);
        let min_symbols = ((full_rate / capacity).max(1.0) * n_sym as f64 * 0.9) as usize;

        let mut awgn;
        let mut rayleigh;
        let (ch, csi): (&mut dyn spinal_channel::Channel, bool) = match self.channel {
            StriderChannel::Awgn => {
                awgn = AwgnChannel::new(snr_db, seed.wrapping_add(0x57D));
                (&mut awgn, false)
            }
            StriderChannel::Rayleigh { tau, csi } => {
                rayleigh = RayleighChannel::new(snr_db, tau, seed.wrapping_add(0x57D));
                (&mut rayleigh, csi)
            }
        };
        let noise_power = 1.0 / ch.snr();

        let chunk = (n_sym / self.attempts_per_pass).max(1);
        let mut rx: Vec<spinal_channel::Complex> = Vec::new();
        let mut sent = 0usize;
        while sent < max_symbols {
            let add = chunk.min(max_symbols - sent);
            let tx = enc.next_symbols(add);
            let ys = ch.transmit(&tx);
            if csi {
                // Equalise with exact CSI: y/h restores the AWGN-like
                // observation with noise boosted by 1/|h|²; the SIC
                // decoder's Gaussian-noise model then applies per symbol
                // with the average boost folded into `noise_power` — the
                // model simplification DESIGN.md notes for fading runs.
                for (i, y) in ys.iter().enumerate() {
                    let h = ch.csi(sent + i).expect("csi");
                    rx.push(*y / h);
                }
            } else if matches!(self.channel, StriderChannel::Rayleigh { .. }) {
                // Amplitude-blind but phase-locked, mirroring the spinal
                // runner's Fig 8-5 convention (see spinal_run.rs).
                for (i, y) in ys.iter().enumerate() {
                    let h = ch.csi(sent + i).expect("phase reference");
                    rx.push(*y * h.conj() / h.abs());
                }
            } else {
                rx.extend(ys);
            }
            sent += add;
            if sent < min_symbols {
                continue;
            }
            let out = decoder.decode(&rx, noise_power, Some(&msg));
            if out.message == msg {
                return Trial::success(self.n_bits, sent);
            }
        }
        Trial::failure(self.n_bits, sent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::summarize;

    fn small() -> StriderRun {
        // 8 layers keeps tests fast; experiments use 33.
        StriderRun::new(1600, 8).with_turbo_iterations(5)
    }

    #[test]
    fn decodes_and_respects_capacity() {
        let run = small();
        for snr in [10.0, 20.0] {
            let t = run.run_trial(snr, 1);
            let s = t.symbols.expect("should decode");
            let rate = 1600.0 / s as f64;
            assert!(rate <= awgn_capacity_db(snr), "snr {snr}: rate {rate}");
        }
    }

    #[test]
    fn rate_is_a_staircase_of_full_rate_over_passes() {
        // Plain Strider decodes only at pass boundaries: measured
        // symbols must be a multiple of the pass length.
        let run = small();
        let code_syms = StriderCode::new(1600, 8, 0).n_sym_per_pass();
        let t = run.run_trial(15.0, 2);
        let s = t.symbols.expect("decodes at 15 dB");
        assert_eq!(s % code_syms, 0, "plain Strider must stop on pass edges");
    }

    #[test]
    fn plus_variant_is_no_worse() {
        let plain = small();
        let plus = small().plus();
        let mut plain_sum = 0usize;
        let mut plus_sum = 0usize;
        for seed in 0..3 {
            plain_sum += plain.run_trial(18.0, seed).symbols.unwrap_or(1 << 20);
            plus_sum += plus.run_trial(18.0, seed).symbols.unwrap_or(1 << 20);
        }
        assert!(plus_sum <= plain_sum, "Strider+ {plus_sum} vs {plain_sum}");
    }

    #[test]
    fn more_snr_fewer_symbols() {
        // The staircase is coarse (rate = 3.2/ℓ for the 8-layer test
        // code), so compare points far enough apart to land on
        // different steps.
        let run = small();
        let lo = summarize(0.0, &[run.run_trial(0.0, 5)]);
        let hi = summarize(22.0, &[run.run_trial(22.0, 5)]);
        assert!(hi.rate > lo.rate, "hi {} vs lo {}", hi.rate, lo.rate);
    }

    #[test]
    fn fading_run_decodes_with_csi() {
        let run = small().with_channel(StriderChannel::Rayleigh { tau: 10, csi: true });
        let t = run.run_trial(22.0, 3);
        assert!(t.symbols.is_some(), "fading Strider trial failed");
    }
}
