//! The generic rateless execution engine of §8.1.
//!
//! "To evaluate the different codes under the same conditions, we
//! integrated all codes into a single framework … a generic rateless
//! execution engine regulates the streaming of symbols across processing
//! elements from the encoder, through the mapper, channel simulator, and
//! demapper, to the decoder, and collects performance statistics."
//!
//! * [`spinal_run`] — spinal trials over AWGN / Rayleigh / BSC, with
//!   fault injection (frame erasures) and the feasibility-skip
//!   optimisation DESIGN.md documents.
//! * [`raptor_run`] — Raptor over dense QAM with exact soft demapping.
//! * [`strider_run`] — Strider and Strider+ with matched-filter SIC.
//! * [`ldpc_run`] — the 802.11n MCS envelope.
//! * [`rated`] — fixed-rate ("rated") spinal analysis for the hedging
//!   study (Fig 8-2).
//! * [`bler`] — fixed-symbol-budget block-error-rate measurement, the
//!   quantity the `spinal-bounds` analytic oracles are stated in.
//! * [`linklayer`] — the §6 half-duplex pause-point/feedback mechanism.
//! * [`stats`] — rate, gap-to-capacity, fraction-of-capacity, CDFs.
//! * [`sweep`] — scoped-thread parallel trial grids.
//! * [`csv`] — output plumbing for the experiment binaries.
//!
//! Success detection: trial runners compare the decoded message against
//! the transmitted one ("genie" validation). This is operationally
//! identical to the 16-bit CRC framing of §6 — `spinal_core::framing`
//! implements the real thing, and the examples use it — while keeping
//! sweep measurements free of CRC overhead bookkeeping, exactly like the
//! paper's simulation framework.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bler;
pub mod csv;
pub mod ldpc_run;
pub mod linklayer;
pub mod raptor_run;
pub mod rated;
pub mod spinal_run;
pub mod stats;
pub mod strider_run;
pub mod sweep;
pub mod threads;

pub use bler::{BlerEstimate, BlerRun};
pub use linklayer::{LinkLayerRun, LinkOutcome};
pub use raptor_run::RaptorRun;
pub use spinal_run::{
    run_bsc_trial, run_bsc_trial_with_engine, run_bsc_trial_with_profile,
    run_bsc_trial_with_workspace, LinkChannel, SpinalRun,
};
pub use stats::{mean_fraction_of_capacity, summarize, summarize_vs_capacity, PointSummary, Trial};
pub use strider_run::{StriderChannel, StriderRun};
pub use sweep::{
    default_threads, overlay_csv_header, overlay_csv_row, run_overlay_with, run_parallel,
    run_parallel_with, OverlayPoint, SweepMode,
};
pub use threads::Threads;
