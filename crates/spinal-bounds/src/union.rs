//! The union bound over wrong-spine divergence depths.
//!
//! A wrong message that first differs from the truth in k-bit segment
//! `a ∈ 1..=n/k` shares spine values `< a` and (under the random-hash
//! model) emits independent uniform symbols from every spine value
//! `≥ a − 1` (0-based). There are `N_a = (2^k − 1)·2^{n − k·a}` such
//! messages, all with the same pairwise-error statistics, so
//!
//! ```text
//! P_e  ≤  Σ_a  min(1, N_a · PEP_a)
//! ```
//!
//! `PEP_a` depends on *which* received symbols sit at depth ≥ a — read
//! from the actual [`Schedule`] so puncturing order and tail symbols are
//! accounted exactly — and is evaluated by [`crate::pep::CraigRule`].
//! Everything runs in the natural-log domain because `N_a` is as large
//! as `2^n` and `PEP_a` as small as `2^{−2c·L_a}`.

use crate::pep::{CraigRule, PairDistribution};
use spinal_channel::db_to_linear;
use spinal_core::{CodeParams, Schedule};

/// Channel model a bound is computed for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundChannel {
    /// Complex AWGN (§8.2 of the paper; Li et al. bound).
    Awgn,
    /// Rayleigh block fading with coherence time `tau` symbols and
    /// perfect receiver CSI (§8.3; Chen et al. bound). `tau = 1` is
    /// i.i.d. fading and is exact; larger `tau` shares one fade across
    /// the symbols of each coherence block.
    RayleighCsi {
        /// Coherence time in symbols.
        tau: usize,
    },
}

/// One evaluated grid point of the bound, as emitted in CSV overlays.
#[derive(Debug, Clone, Copy)]
pub struct BoundPoint {
    /// SNR in dB.
    pub snr_db: f64,
    /// Received-symbol budget the bound was evaluated at.
    pub symbols: usize,
    /// The BLER upper bound in `[0, 1]`.
    pub bler: f64,
    /// The SNR-independent error-floor component.
    pub floor: f64,
}

/// Analytic BLER upper-bound calculator for one `(CodeParams, channel)`
/// configuration. Construction precomputes the constellation pair-
/// distance law and the schedule; each [`SpinalBound::bler_bound`] call
/// is then a cheap quadrature.
#[derive(Debug, Clone)]
pub struct SpinalBound {
    params: CodeParams,
    channel: BoundChannel,
    schedule: Schedule,
    dist: PairDistribution,
}

impl SpinalBound {
    /// Build the bound machinery for `params` over `channel`.
    pub fn new(params: &CodeParams, channel: BoundChannel) -> Self {
        params.validate();
        if let BoundChannel::RayleighCsi { tau } = channel {
            assert!(tau >= 1, "coherence time must be at least one symbol");
        }
        SpinalBound {
            params: params.clone(),
            channel,
            schedule: Schedule::new(params.num_spines(), params.tail, params.puncturing),
            dist: PairDistribution::new(params),
        }
    }

    /// The schedule the bound evaluates against (shared with the coder).
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// For every divergence depth `a = 1..=n/k`, the number of received
    /// symbols among the first `total_symbols` that a depth-`a` wrong
    /// message regenerates differently (spine index ≥ a − 1).
    pub fn wrong_spine_symbol_counts(&self, total_symbols: usize) -> Vec<usize> {
        let ns = self.params.num_spines();
        let mut per_spine = vec![0usize; ns];
        for pos in self.schedule.generate(total_symbols) {
            per_spine[pos.spine] += 1;
        }
        // L_a = Σ_{s ≥ a−1} count[s]: suffix sums.
        let mut out = vec![0usize; ns];
        let mut acc = 0usize;
        for a in (1..=ns).rev() {
            acc += per_spine[a - 1];
            out[a - 1] = acc;
        }
        out
    }

    /// ln N_a for depth `a` (1-based): `(2^k − 1)·2^{n − k·a}` messages
    /// first differ from the truth at segment `a`.
    fn ln_depth_multiplicity(&self, a: usize) -> f64 {
        let k = self.params.k;
        (((1u64 << k) - 1) as f64).ln()
            + (self.params.n as f64 - (k * a) as f64) * std::f64::consts::LN_2
    }

    /// The BLER upper bound after receiving the first `total_symbols`
    /// scheduled symbols at `snr_db`. Monotone non-increasing in both
    /// arguments; saturates at 1.
    pub fn bler_bound(&self, snr_db: f64, total_symbols: usize) -> f64 {
        let sigma_sq = 1.0 / db_to_linear(snr_db);
        let rule = CraigRule::new(sigma_sq);
        let counts = self.wrong_spine_symbol_counts(total_symbols);

        // For fading, pre-group the received positions by coherence block
        // once; depth a's block multiset is then a filtered count.
        let positions = match self.channel {
            BoundChannel::Awgn => Vec::new(),
            BoundChannel::RayleighCsi { .. } => self.schedule.generate(total_symbols),
        };

        let mut total = 0.0f64;
        for (idx, &l_a) in counts.iter().enumerate() {
            let a = idx + 1;
            let ln_pep = match self.channel {
                BoundChannel::Awgn => rule.ln_pep_awgn(&self.dist, l_a),
                BoundChannel::RayleighCsi { tau } => {
                    let n_blocks = total_symbols.div_ceil(tau).max(1);
                    let mut blocks = vec![0usize; n_blocks];
                    for (i, pos) in positions.iter().enumerate() {
                        if pos.spine >= idx {
                            blocks[i / tau] += 1;
                        }
                    }
                    rule.ln_pep_rayleigh(&self.dist, &blocks)
                }
            };
            let ln_term = self.ln_depth_multiplicity(a) + ln_pep;
            total += ln_term.min(0.0).exp();
            if total >= 1.0 {
                return 1.0;
            }
        }
        total.min(1.0)
    }

    /// The SNR-independent error floor: the `SNR → ∞` limit of
    /// [`SpinalBound::bler_bound`]. A wrong message whose regenerated
    /// symbols *collide* with the truth at all `L_a` differing positions
    /// (per-symbol probability `2^{−2c}`) is indistinguishable at any
    /// SNR, giving `Σ_a min(1, N_a · 2^{−2c·L_a})` — the ML-regime
    /// finite-blocklength floor.
    pub fn error_floor(&self, total_symbols: usize) -> f64 {
        let ln_p0 = self.dist.p_zero().ln();
        let mut total = 0.0f64;
        for (idx, &l_a) in self
            .wrong_spine_symbol_counts(total_symbols)
            .iter()
            .enumerate()
        {
            let ln_term = self.ln_depth_multiplicity(idx + 1) + l_a as f64 * ln_p0;
            total += ln_term.min(0.0).exp();
            if total >= 1.0 {
                return 1.0;
            }
        }
        total.min(1.0)
    }

    /// Evaluate the bound at a symbol budget of `passes` complete passes.
    pub fn point_at_passes(&self, snr_db: f64, passes: usize) -> BoundPoint {
        let symbols = passes * self.schedule.symbols_per_pass();
        BoundPoint {
            snr_db,
            symbols,
            bler: self.bler_bound(snr_db, symbols),
            floor: self.error_floor(symbols),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CodeParams {
        CodeParams::default().with_n(64)
    }

    #[test]
    fn wrong_spine_counts_match_schedule_by_hand() {
        // n=64, k=4 → 16 spines; 2 passes of (16 + 2 tail) = 36 symbols.
        let b = SpinalBound::new(&params(), BoundChannel::Awgn);
        let counts = b.wrong_spine_symbol_counts(36);
        assert_eq!(counts.len(), 16);
        // Depth 1 sees every symbol; the deepest spine sees its own
        // regular emissions plus all tail symbols: 2·(1 + 2) = 6.
        assert_eq!(counts[0], 36);
        assert_eq!(counts[15], 6);
        // Monotone non-increasing in depth.
        for w in counts.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn bound_is_a_probability_and_decreases_with_snr() {
        let b = SpinalBound::new(&params(), BoundChannel::Awgn);
        let symbols = 3 * b.schedule().symbols_per_pass();
        let mut prev = 1.0f64 + 1e-12;
        for snr_db in [0.0, 4.0, 8.0, 12.0, 16.0, 20.0] {
            let v = b.bler_bound(snr_db, symbols);
            assert!((0.0..=1.0).contains(&v), "snr {snr_db}: {v}");
            assert!(v <= prev + 1e-12, "snr {snr_db}: {v} > {prev}");
            prev = v;
        }
    }

    #[test]
    fn bound_decreases_with_symbol_budget() {
        let b = SpinalBound::new(&params(), BoundChannel::Awgn);
        let spp = b.schedule().symbols_per_pass();
        let p2 = b.bler_bound(10.0, 2 * spp);
        let p4 = b.bler_bound(10.0, 4 * spp);
        assert!(p4 <= p2, "{p4} > {p2}");
    }

    #[test]
    fn bound_is_nontrivial_above_the_rate_point() {
        // 3 passes of n=64 is rate 64/54 ≈ 1.19 b/s; at 15 dB (capacity
        // ≈ 5 b/s) the union bound must be far below 1.
        let b = SpinalBound::new(&params(), BoundChannel::Awgn);
        let v = b.bler_bound(15.0, 3 * b.schedule().symbols_per_pass());
        assert!(v < 0.1, "bound {v} not informative");
        // And trivial well below capacity.
        let lo = b.bler_bound(-5.0, b.schedule().symbols_per_pass());
        assert!(lo > 0.99, "bound {lo} should saturate at low SNR");
    }

    #[test]
    fn high_snr_limit_is_the_error_floor() {
        let b = SpinalBound::new(&params(), BoundChannel::Awgn);
        let symbols = 2 * b.schedule().symbols_per_pass();
        let floor = b.error_floor(symbols);
        let near_inf = b.bler_bound(300.0, symbols);
        assert!(
            (near_inf - floor).abs() <= 1e-9 + 0.01 * floor,
            "bound {near_inf} vs floor {floor}"
        );
        assert!(floor > 0.0, "floor must be positive at finite blocklength");
    }

    #[test]
    fn floor_drops_with_more_symbols() {
        let b = SpinalBound::new(&params(), BoundChannel::Awgn);
        let spp = b.schedule().symbols_per_pass();
        assert!(b.error_floor(4 * spp) < b.error_floor(2 * spp));
    }

    #[test]
    fn rayleigh_bound_is_weaker_than_awgn() {
        // Fading destroys symbols: at equal SNR/symbols the fading bound
        // must be no tighter than AWGN.
        let awgn = SpinalBound::new(&params(), BoundChannel::Awgn);
        let ray = SpinalBound::new(&params(), BoundChannel::RayleighCsi { tau: 1 });
        let symbols = 3 * awgn.schedule().symbols_per_pass();
        for snr_db in [8.0, 12.0, 16.0] {
            let a = awgn.bler_bound(snr_db, symbols);
            let r = ray.bler_bound(snr_db, symbols);
            assert!(r >= a - 1e-12, "snr {snr_db}: rayleigh {r} < awgn {a}");
        }
    }

    #[test]
    fn longer_coherence_time_loosens_the_fading_bound() {
        // τ > 1 removes diversity, so the bound can only grow.
        let iid = SpinalBound::new(&params(), BoundChannel::RayleighCsi { tau: 1 });
        let blk = SpinalBound::new(&params(), BoundChannel::RayleighCsi { tau: 9 });
        let symbols = 4 * iid.schedule().symbols_per_pass();
        for snr_db in [10.0, 15.0, 20.0] {
            let a = iid.bler_bound(snr_db, symbols);
            let b = blk.bler_bound(snr_db, symbols);
            assert!(b >= a - 1e-12, "snr {snr_db}: tau9 {b} < tau1 {a}");
        }
    }

    #[test]
    fn point_at_passes_is_consistent() {
        let b = SpinalBound::new(&params(), BoundChannel::Awgn);
        let p = b.point_at_passes(12.0, 3);
        assert_eq!(p.symbols, 3 * b.schedule().symbols_per_pass());
        assert!((p.bler - b.bler_bound(12.0, p.symbols)).abs() < 1e-15);
        assert!(p.floor <= p.bler + 1e-12);
    }

    #[test]
    fn bound_respects_k_and_c_scaling() {
        // Denser symbols (larger c) carry more bits, so at fixed symbol
        // count and generous SNR the floor falls with c.
        let c4 = SpinalBound::new(&params().with_c(4), BoundChannel::Awgn);
        let c8 = SpinalBound::new(&params().with_c(8), BoundChannel::Awgn);
        let symbols = 2 * c4.schedule().symbols_per_pass();
        assert!(c8.error_floor(symbols) < c4.error_floor(symbols));
    }
}
