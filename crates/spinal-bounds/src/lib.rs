//! Analytic upper bounds on the block-error rate of spinal codes under
//! ML decoding — the oracle layer the statistical test harness checks
//! every simulated BLER curve against.
//!
//! The paper evaluates spinal codes purely by simulation. Follow-up work
//! derived closed-form upper bounds on the ML block-error probability:
//!
//! * Li, Wu, Han, Zhang, "New Upper Bounds on the Error Probability under
//!   ML Decoding for Spinal Codes" (AWGN), and
//! * Chen et al., "Tight Upper Bounds on the Error Probability of Spinal
//!   Codes over Fading Channels" (Rayleigh et al.),
//!
//! both built on the same skeleton: classify wrong messages by the first
//! k-bit segment `a` where they differ from the truth, observe that under
//! the random-hash model every coded symbol attached to a spine value at
//! depth `≥ a` is an independent uniform constellation point, and union-
//! bound over depths:
//!
//! ```text
//! P_e  ≤  Σ_{a=1}^{n/k}  min(1,  N_a · PEP(L_a))
//! N_a  =  (2^k − 1) · 2^{n − k·a}        (wrong messages at depth a)
//! L_a  =  #received symbols with spine index ≥ a − 1
//! ```
//!
//! `L_a` is read off the *actual* transmission [`Schedule`] (puncturing
//! and tail symbols included), so the bound tracks exactly what the
//! encoder under test emits. The pairwise term `PEP(L)` is evaluated
//! *exactly* (no Chernoff loss) through Craig's form of the Q-function —
//! see [`pep`] — which is what makes these bounds tight enough to be
//! useful oracles at finite blocklength.
//!
//! Everything is computed in the natural-log domain: `N_a` reaches
//! `2^{n}` and `PEP` reaches `2^{−2c·L}`, both far outside f64 range.
//!
//! The bounds assume ML decoding. The bubble decoder of `spinal-core` is
//! a pruned approximation of ML, so a *simulated* BLER may in principle
//! exceed the ML bound when the beam prunes the true path; the
//! `bound_oracle` statistical tests pick operating points (B ≫ 2^k,
//! moderate rate) where pruning loss is far below the union bound's own
//! slack, making "sim ≤ bound" a machine-checkable invariant that pins
//! encoder, channel model, and decoder simultaneously.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pep;
pub mod union;

pub use pep::PairDistribution;
pub use union::{BoundChannel, BoundPoint, SpinalBound};
