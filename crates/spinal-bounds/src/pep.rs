//! Exact pairwise-error terms for the union bounds.
//!
//! Under the random-hash model, a wrong codeword's symbols after the
//! divergence depth are independent uniform constellation points, so for
//! a pair of codewords differing in `L` received symbols the ML pairwise
//! error probability over AWGN is
//!
//! ```text
//! PEP(L) = E_d[ Q(√(D / 2σ²)) ] + ½·P(D = 0),      D = Σ_{j=1}^{L} |d_j|²
//! ```
//!
//! with `d_j = x_j − x'_j` the difference of two independent uniform
//! constellation symbols (the `½·P(D=0)` atom upgrades `Q(0) = ½` to a
//! full tie error, so the result upper-bounds *any* tie-breaking rule).
//! Craig's form `Q(x) = (1/π)∫₀^{π/2} exp(−x²/2sin²θ) dθ` turns the
//! L-fold expectation into a product of identical one-symbol factors
//! inside a one-dimensional integral — evaluated here with a fixed
//! Gauss–Legendre rule, so the PEP is exact (no Chernoff/union slack at
//! this layer), which is what the "new/tight upper bounds" papers exploit.
//!
//! For Rayleigh fading with receiver CSI the distance `|d_j|²` is scaled
//! by `|h_j|² ~ Exp(1)`; taking the fading expectation inside Craig's
//! integral replaces `exp(−z·t)` with the Exp-MGF `1/(1 + z·t)`. Block
//! fading (coherence time τ > 1) shares one `h` across the symbols of a
//! block, handled by convolving the per-symbol distance distribution.

use spinal_channel::math::gauss_legendre;
use spinal_core::{CodeParams, Constellation};

/// Gauss–Legendre nodes over `(0, π/2)` for Craig's integral. The
/// integrand is smooth and analytic; 96 nodes put the quadrature error
/// many orders below the union bound's inherent looseness.
pub const CRAIG_NODES: usize = 96;

/// Conservative bin count for the joint `|d|²` histogram (and its block
/// convolutions). Values are floored onto the grid: *underestimating* a
/// distance can only *increase* an error-probability term, so binning
/// preserves the upper-bound property.
const JOINT_BINS: usize = 1 << 13;

/// Largest number of same-fading-block symbols convolved exactly. A
/// block with more differing symbols is truncated to this many — again
/// discarding distance, so the bound stays valid (just looser for very
/// long coherence times).
pub const MAX_BLOCK_CONV: usize = 8;

/// Distribution of the difference of two independent uniformly-chosen
/// constellation symbols, precomputed from a [`CodeParams`]'s mapping.
#[derive(Debug, Clone)]
pub struct PairDistribution {
    /// Per-real-dimension `(d², probability)` support, exact.
    dim: Vec<(f64, f64)>,
    /// Joint per-complex-symbol `(|d|², probability)` support,
    /// conservatively binned.
    joint: Vec<(f64, f64)>,
    /// `P(d = 0)` for one complex symbol (`2^{−2c}` for injective maps).
    p_zero: f64,
}

/// log(Σ exp(xᵢ)) without overflow; `&[]` → −∞.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

impl PairDistribution {
    /// Build the pair-difference distribution for `params`' constellation.
    pub fn new(params: &CodeParams) -> Self {
        let con = Constellation::new(params.mapping, params.c);
        let levels = con.levels();
        let m = levels.len();
        let p_pair = 1.0 / (m * m) as f64;

        // Exact per-dimension support: all m² level differences, merged
        // when numerically identical.
        let mut d2: Vec<f64> = Vec::with_capacity(m * m);
        for &a in levels {
            for &b in levels {
                let d = a - b;
                d2.push(d * d);
            }
        }
        d2.sort_by(f64::total_cmp);
        let mut dim: Vec<(f64, f64)> = Vec::new();
        for v in d2 {
            match dim.last_mut() {
                Some((last, p)) if v - *last <= 1e-12 * v.max(1e-300) => *p += p_pair,
                _ => dim.push((v, p_pair)),
            }
        }

        let joint = convolve(&dim, &dim, JOINT_BINS);
        let p_zero = joint
            .iter()
            .find(|&&(v, _)| v == 0.0)
            .map(|&(_, p)| p)
            .unwrap_or(0.0);
        PairDistribution { dim, joint, p_zero }
    }

    /// `P(d = 0)` for one complex symbol.
    pub fn p_zero(&self) -> f64 {
        self.p_zero
    }

    /// Per-real-dimension support `(d², p)`.
    pub fn dim_support(&self) -> &[(f64, f64)] {
        &self.dim
    }

    /// Per-complex-symbol support `(|d|², p)`.
    pub fn joint_support(&self) -> &[(f64, f64)] {
        &self.joint
    }
}

/// Distribution of the sum of two independent non-negative variables
/// given by `(value, prob)` supports, floor-binned onto a `bins`-point
/// grid (the zero atom is kept exact).
fn convolve(a: &[(f64, f64)], b: &[(f64, f64)], bins: usize) -> Vec<(f64, f64)> {
    let max: f64 = a.last().map_or(0.0, |x| x.0) + b.last().map_or(0.0, |x| x.0);
    if max == 0.0 {
        return vec![(0.0, 1.0)];
    }
    let step = max / bins as f64;
    let mut acc = vec![0.0f64; bins + 1];
    for &(va, pa) in a {
        for &(vb, pb) in b {
            let idx = (((va + vb) / step) as usize).min(bins);
            acc[idx] += pa * pb;
        }
    }
    acc.iter()
        .enumerate()
        .filter(|&(_, &p)| p > 0.0)
        .map(|(i, &p)| (i as f64 * step, p))
        .collect()
}

/// The Craig-integral evaluation state shared by the per-SNR bound
/// computations: quadrature nodes and, per node, the `1/(4σ²sin²θ)`
/// exponent scale.
#[derive(Debug, Clone)]
pub struct CraigRule {
    /// `(ln(w/π), t = 1/(4σ²·sin²θ))` per node.
    nodes: Vec<(f64, f64)>,
}

impl CraigRule {
    /// Build the rule for complex noise power `σ²` (per-symbol).
    pub fn new(sigma_sq: f64) -> Self {
        assert!(sigma_sq > 0.0, "noise power must be positive");
        let nodes = gauss_legendre(CRAIG_NODES, 0.0, std::f64::consts::FRAC_PI_2)
            .into_iter()
            .map(|(theta, w)| {
                let s = theta.sin();
                (
                    (w / std::f64::consts::PI).ln(),
                    1.0 / (4.0 * sigma_sq * s * s),
                )
            })
            .collect();
        CraigRule { nodes }
    }

    /// ln PEP over AWGN for `l` differing received symbols: the two I/Q
    /// dimensions are independent, so the one-symbol Craig factor is the
    /// squared per-dimension factor and `PEP` needs `g(θ)^{2l}`.
    pub fn ln_pep_awgn(&self, dist: &PairDistribution, l: usize) -> f64 {
        let terms: Vec<f64> = self
            .nodes
            .iter()
            .map(|&(ln_w, t)| {
                let g: f64 = dist.dim.iter().map(|&(d2, p)| p * (-d2 * t).exp()).sum();
                ln_w + 2.0 * l as f64 * g.ln()
            })
            .collect();
        // The Δ = 0 tie atom: Craig contributes Q(0)·P(D=0) = ½·P(D=0);
        // add another ½·P(D=0) so a tie counts as a full error.
        let ln_atom = 0.5f64.ln() + l as f64 * safe_ln(dist.p_zero);
        log_sum_exp(&[log_sum_exp(&terms), ln_atom])
    }

    /// ln PEP over Rayleigh block fading with receiver CSI. `block_sizes`
    /// lists, for every coherence block, how many *differing* received
    /// symbols fall in it (zero-entries may be omitted); each block shares
    /// one `|h|² ~ Exp(1)` draw, whose MGF turns the Craig factor for a
    /// block with summed distance `S` into `E[1/(1 + S·t)]`.
    pub fn ln_pep_rayleigh(&self, dist: &PairDistribution, block_sizes: &[usize]) -> f64 {
        // Histogram of block multiplicities, truncated to MAX_BLOCK_CONV
        // (dropping distance terms keeps the upper bound valid).
        let mut mult = [0usize; MAX_BLOCK_CONV + 1];
        let mut total_syms = 0usize;
        for &m in block_sizes {
            if m == 0 {
                continue;
            }
            total_syms += m;
            mult[m.min(MAX_BLOCK_CONV)] += 1;
        }

        // Distance-sum distributions S_m for each multiplicity in use;
        // convolve only up to the largest multiplicity present (i.i.d.
        // fading needs none).
        let mut sums: Vec<Option<Vec<(f64, f64)>>> = vec![None; MAX_BLOCK_CONV + 1];
        let mut cur = dist.joint.clone();
        for m in 1..=MAX_BLOCK_CONV {
            if mult[m..].iter().any(|&c| c > 0) {
                sums[m] = Some(cur.clone());
            } else {
                break;
            }
            if m < MAX_BLOCK_CONV && mult[m + 1..].iter().any(|&c| c > 0) {
                cur = convolve(&cur, &dist.joint, JOINT_BINS);
            }
        }

        let terms: Vec<f64> = self
            .nodes
            .iter()
            .map(|&(ln_w, t)| {
                let mut ln_prod = 0.0;
                for (m, &count) in mult.iter().enumerate().skip(1) {
                    if count == 0 {
                        continue;
                    }
                    let s_m = sums[m].as_ref().expect("distribution built above");
                    let f: f64 = s_m.iter().map(|&(s, p)| p / (1.0 + s * t)).sum();
                    ln_prod += count as f64 * f.ln();
                }
                ln_w + ln_prod
            })
            .collect();
        let ln_atom = 0.5f64.ln() + total_syms as f64 * safe_ln(dist.p_zero);
        log_sum_exp(&[log_sum_exp(&terms), ln_atom])
    }
}

fn safe_ln(x: f64) -> f64 {
    if x <= 0.0 {
        f64::NEG_INFINITY
    } else {
        x.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use spinal_channel::math::{normal_pair, q_func};

    fn dist_for(c: u32) -> (PairDistribution, CodeParams) {
        let p = CodeParams::default().with_c(c);
        (PairDistribution::new(&p), p)
    }

    #[test]
    fn pair_distribution_is_a_probability_law() {
        for c in [1u32, 2, 6] {
            let (d, _) = dist_for(c);
            let pd: f64 = d.dim_support().iter().map(|&(_, p)| p).sum();
            let pj: f64 = d.joint_support().iter().map(|&(_, p)| p).sum();
            assert!((pd - 1.0).abs() < 1e-9, "c={c} dim mass {pd}");
            assert!((pj - 1.0).abs() < 1e-9, "c={c} joint mass {pj}");
            // Injective map: the zero atom is exactly 2^{−2c}.
            let expect = 0.25f64.powi(c as i32);
            assert!(
                (d.p_zero() - expect).abs() < 1e-12,
                "c={c} p0={}",
                d.p_zero()
            );
        }
    }

    #[test]
    fn qpsk_single_symbol_pep_matches_hand_computation() {
        // c=1: levels ±√½ per dimension ⇒ per-dim d² ∈ {0 (w.p. ½), 2
        // (w.p. ½)}; D ∈ {0:¼, 2:½, 4:¼}. PEP(1) = ¼·1 + ½·Q(√(1/σ²)) +
        // ¼·Q(√(2/σ²)) counting the D=0 tie as a full error.
        let (d, _) = dist_for(1);
        for snr_db in [0.0, 6.0, 10.0] {
            let sigma_sq = 1.0 / spinal_channel::db_to_linear(snr_db);
            let rule = CraigRule::new(sigma_sq);
            let got = rule.ln_pep_awgn(&d, 1).exp();
            let want = 0.25
                + 0.5 * q_func((1.0 / sigma_sq).sqrt())
                + 0.25 * q_func((2.0 / sigma_sq).sqrt());
            assert!(
                (got - want).abs() < 1e-6,
                "snr={snr_db}: got {got} want {want}"
            );
        }
    }

    #[test]
    fn awgn_pep_matches_monte_carlo() {
        // Empirical E[Q(√(D/2σ²))] (+ tie atom) over random symbol pairs
        // must match the Craig evaluation.
        let (d, params) = dist_for(6);
        let con = Constellation::new(params.mapping, params.c);
        let mask = con.levels().len() as u32 - 1; // power-of-two table
        let mut rng = StdRng::seed_from_u64(42);
        let sigma_sq = 1.0 / spinal_channel::db_to_linear(3.0);
        let l = 4usize;
        let trials = 20_000;
        let mut acc = 0.0;
        for _ in 0..trials {
            let mut big_d = 0.0;
            for _ in 0..(2 * l) {
                let a = con.map_value(rng.gen::<u32>() & mask);
                let b = con.map_value(rng.gen::<u32>() & mask);
                big_d += (a - b) * (a - b);
            }
            acc += if big_d == 0.0 {
                1.0
            } else {
                q_func((big_d / (2.0 * sigma_sq)).sqrt())
            };
        }
        let mc = acc / trials as f64;
        let craig = CraigRule::new(sigma_sq).ln_pep_awgn(&d, l).exp();
        assert!(
            (mc - craig).abs() < 0.01 * mc.max(0.01),
            "mc {mc} vs craig {craig}"
        );
    }

    #[test]
    fn rayleigh_pep_matches_monte_carlo() {
        // iid fading (every block holds one differing symbol): sample
        // h, d and average Q(√(Σ|h|²|d|²/2σ²)).
        let (d, params) = dist_for(6);
        let con = Constellation::new(params.mapping, params.c);
        let mask = con.levels().len() as u32 - 1;
        let mut rng = StdRng::seed_from_u64(7);
        let sigma_sq = 1.0 / spinal_channel::db_to_linear(8.0);
        let l = 3usize;
        let trials = 40_000;
        let mut acc = 0.0;
        for _ in 0..trials {
            let mut big_d = 0.0;
            for _ in 0..l {
                let (hr, hi) = normal_pair(&mut rng);
                let h2 = (hr * hr + hi * hi) / 2.0; // E[|h|²] = 1
                let di =
                    con.map_value(rng.gen::<u32>() & mask) - con.map_value(rng.gen::<u32>() & mask);
                let dq =
                    con.map_value(rng.gen::<u32>() & mask) - con.map_value(rng.gen::<u32>() & mask);
                big_d += h2 * (di * di + dq * dq);
            }
            acc += if big_d == 0.0 {
                1.0
            } else {
                q_func((big_d / (2.0 * sigma_sq)).sqrt())
            };
        }
        let mc = acc / trials as f64;
        let craig = CraigRule::new(sigma_sq)
            .ln_pep_rayleigh(&d, &vec![1; l])
            .exp();
        assert!(
            (mc - craig).abs() < 0.02 * mc.max(0.02),
            "mc {mc} vs craig {craig}"
        );
    }

    #[test]
    fn rayleigh_single_symbol_matches_exponential_closed_form() {
        // One differing symbol with fixed |d|² = z: E_h[Q(√(z|h|²/2σ²))]
        // = ½(1 − √(γ/(1+γ))), γ = z/(4σ²). Averaging the closed form
        // over the joint distance law must match ln_pep_rayleigh.
        let (d, _) = dist_for(2);
        let sigma_sq = 0.2;
        let mut want = 0.0;
        for &(z, p) in d.joint_support() {
            if z == 0.0 {
                want += p; // tie counts as full error
            } else {
                let g = z / (4.0 * sigma_sq);
                want += p * 0.5 * (1.0 - (g / (1.0 + g)).sqrt());
            }
        }
        let got = CraigRule::new(sigma_sq).ln_pep_rayleigh(&d, &[1]).exp();
        assert!((got - want).abs() < 1e-6, "got {got} want {want}");
    }

    #[test]
    fn block_fading_pep_exceeds_iid_pep() {
        // Sharing one fade across symbols removes diversity, so the
        // pairwise error for one block of 4 must exceed 4 iid blocks.
        let (d, _) = dist_for(6);
        let rule = CraigRule::new(0.25);
        let one_block = rule.ln_pep_rayleigh(&d, &[4]);
        let iid = rule.ln_pep_rayleigh(&d, &[1, 1, 1, 1]);
        assert!(one_block > iid, "block {one_block} vs iid {iid}");
    }

    #[test]
    fn block_truncation_only_loosens() {
        // A block longer than MAX_BLOCK_CONV is truncated; the result
        // must upper-bound the exact m = MAX_BLOCK_CONV value (equality)
        // and the looser count must not be *below* it.
        let (d, _) = dist_for(6);
        let rule = CraigRule::new(0.5);
        let capped = rule.ln_pep_rayleigh(&d, &[MAX_BLOCK_CONV + 5]);
        let exact_cap = rule.ln_pep_rayleigh(&d, &[MAX_BLOCK_CONV]);
        assert!(capped >= exact_cap - 1e-9);
    }

    #[test]
    fn pep_decreases_with_symbols_and_snr() {
        let (d, _) = dist_for(6);
        let lo = CraigRule::new(1.0 / spinal_channel::db_to_linear(2.0));
        let hi = CraigRule::new(1.0 / spinal_channel::db_to_linear(10.0));
        assert!(lo.ln_pep_awgn(&d, 8) < lo.ln_pep_awgn(&d, 4));
        assert!(hi.ln_pep_awgn(&d, 4) < lo.ln_pep_awgn(&d, 4));
        assert!(hi.ln_pep_rayleigh(&d, &[1; 4]) < lo.ln_pep_rayleigh(&d, &[1; 4]));
    }

    #[test]
    fn zero_symbols_is_a_certain_tie() {
        let (d, _) = dist_for(6);
        let rule = CraigRule::new(0.1);
        assert!((rule.ln_pep_awgn(&d, 0).exp() - 1.0).abs() < 1e-9);
        assert!((rule.ln_pep_rayleigh(&d, &[]).exp() - 1.0).abs() < 1e-9);
    }
}
