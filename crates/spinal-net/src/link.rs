//! Transport I/O: the [`Datagram`] trait and its two endpoints.
//!
//! The trait is deliberately dumb — push a buffer, poll for a buffer —
//! so every scheduling decision (what to send, when to re-send, when to
//! give up) lives in the sender/receiver layer and is testable without
//! any real network. Two implementations:
//!
//! * [`LoopbackLink`] — an in-memory pair whose data direction routes
//!   the observation payload of every Data datagram through a
//!   `spinal-channel` noise model (AWGN, Rayleigh fading with CSI, or
//!   BSC on bit payloads) and then subjects the whole datagram to
//!   seeded loss/duplication/reordering ([`spinal_channel::Impairer`]).
//!   Control datagrams (Init/Feedback) skip the noise but not the
//!   impairment — the protocol must survive losing them.
//! * [`UdpLink`] — a thin non-blocking [`std::net::UdpSocket`] binding
//!   for running the same sender/receiver over a real socket.

use crate::wire::{Packet, Payload};
use parking_lot::Mutex;
use spinal_channel::{AwgnChannel, BitChannel, BscChannel, Channel, Impairer, Impairments};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::Arc;

/// A datagram endpoint: unreliable, unordered, message-boundary-
/// preserving. Implementations must never block in [`Datagram::recv`].
pub trait Datagram {
    /// Offer one datagram to the link. Delivery is not guaranteed.
    fn send(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Poll for one arrived datagram; `Ok(None)` when nothing is
    /// waiting.
    fn recv(&mut self) -> io::Result<Option<Vec<u8>>>;
}

// ---------------------------------------------------------------------
// Loopback
// ---------------------------------------------------------------------

/// Channel noise applied to Data payloads crossing the loopback's data
/// direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseModel {
    /// Deliver observations untouched.
    Clean,
    /// Complex AWGN at the given SNR (§8.1).
    Awgn {
        /// Signal-to-noise ratio in dB.
        snr_db: f64,
    },
    /// Block Rayleigh fading with exact CSI attached to every symbol
    /// (§8.3, Figure 8-4): `Symbols` payloads come out as `SymbolsCsi`.
    Rayleigh {
        /// Signal-to-noise ratio in dB.
        snr_db: f64,
        /// Coherence time in symbols.
        tau: usize,
    },
    /// Bit flips on `Bits` payloads (§4).
    Bsc {
        /// Per-bit flip probability.
        flip_p: f64,
    },
}

/// Instantiated, stateful noise for one direction.
enum NoiseState {
    Clean,
    Awgn(AwgnChannel),
    Rayleigh {
        ch: spinal_channel::RayleighChannel,
        /// Cumulative symbols pushed through `ch`, for CSI lookup.
        sent: usize,
    },
    Bsc(BscChannel),
}

impl NoiseState {
    fn new(model: NoiseModel, seed: u64) -> Self {
        match model {
            NoiseModel::Clean => NoiseState::Clean,
            NoiseModel::Awgn { snr_db } => NoiseState::Awgn(AwgnChannel::new(snr_db, seed)),
            NoiseModel::Rayleigh { snr_db, tau } => NoiseState::Rayleigh {
                ch: spinal_channel::RayleighChannel::new(snr_db, tau, seed),
                sent: 0,
            },
            NoiseModel::Bsc { flip_p } => NoiseState::Bsc(BscChannel::new(flip_p, seed)),
        }
    }

    /// Corrupt one Data payload in transmit order.
    fn apply(&mut self, payload: Payload) -> Payload {
        match (self, payload) {
            (NoiseState::Clean, p) => p,
            (NoiseState::Awgn(ch), Payload::Symbols(ys)) => Payload::Symbols(ch.transmit(&ys)),
            (NoiseState::Rayleigh { ch, sent }, Payload::Symbols(ys)) => {
                let noisy = ch.transmit(&ys);
                let start = *sent;
                *sent += ys.len();
                Payload::SymbolsCsi(
                    noisy
                        .into_iter()
                        .enumerate()
                        .map(|(i, y)| (y, ch.csi(start + i).expect("csi for sent symbol")))
                        .collect(),
                )
            }
            (NoiseState::Bsc(ch), Payload::Bits(bits)) => Payload::Bits(ch.transmit_bits(&bits)),
            // A payload kind the model does not cover (e.g. bits through
            // AWGN) passes clean rather than panicking mid-transfer; the
            // transfer driver picks matching modulation and noise.
            (_, p) => p,
        }
    }
}

/// One direction of the loopback: noise, then impairment, then a queue.
struct Direction {
    queue: VecDeque<Vec<u8>>,
    noise: NoiseState,
    impair: Impairer<Vec<u8>>,
}

impl Direction {
    fn send(&mut self, buf: &[u8]) {
        // Corrupt the observations of Data datagrams in flight; leave
        // framing and control datagrams untouched (module docs).
        let on_wire = match Packet::decode(buf) {
            Some(Packet::Data {
                transfer_id,
                seq,
                block,
                offset,
                payload,
            }) => Packet::Data {
                transfer_id,
                seq,
                block,
                offset,
                payload: self.noise.apply(payload),
            }
            .encode(),
            _ => buf.to_vec(),
        };
        let delivered = self.impair.push(on_wire);
        self.queue.extend(delivered);
    }

    fn recv(&mut self) -> Option<Vec<u8>> {
        if self.queue.is_empty() {
            // Nothing in order: anything still held for reordering
            // arrives now (its holdback has effectively expired).
            let held = self.impair.flush();
            self.queue.extend(held);
        }
        self.queue.pop_front()
    }
}

/// One endpoint of an in-memory datagram pair (see the module docs).
/// Cloneable handles; both ends stay usable from one thread or several.
#[derive(Clone)]
pub struct LoopbackLink {
    /// Direction this endpoint sends into.
    out: Arc<Mutex<Direction>>,
    /// Direction this endpoint receives from.
    inbound: Arc<Mutex<Direction>>,
}

impl LoopbackLink {
    /// Build a connected (sender, receiver) pair. The sender→receiver
    /// direction applies `noise` to Data payloads and `data_impair` to
    /// every datagram; the receiver→sender direction is noise-free but
    /// subject to `feedback_impair`. Deterministic in `seed`.
    pub fn pair(
        noise: NoiseModel,
        data_impair: Impairments,
        feedback_impair: Impairments,
        seed: u64,
    ) -> (LoopbackLink, LoopbackLink) {
        let forward = Arc::new(Mutex::new(Direction {
            queue: VecDeque::new(),
            noise: NoiseState::new(noise, seed ^ 0x0A57),
            impair: Impairer::new(data_impair, seed ^ 0xDA7A),
        }));
        let backward = Arc::new(Mutex::new(Direction {
            queue: VecDeque::new(),
            noise: NoiseState::Clean,
            impair: Impairer::new(feedback_impair, seed ^ 0xFEED),
        }));
        let sender = LoopbackLink {
            out: Arc::clone(&forward),
            inbound: Arc::clone(&backward),
        };
        let receiver = LoopbackLink {
            out: backward,
            inbound: forward,
        };
        (sender, receiver)
    }

    /// A perfectly clean pair (no noise, no impairment).
    pub fn clean_pair(seed: u64) -> (LoopbackLink, LoopbackLink) {
        LoopbackLink::pair(
            NoiseModel::Clean,
            Impairments::clean(),
            Impairments::clean(),
            seed,
        )
    }
}

impl Datagram for LoopbackLink {
    fn send(&mut self, buf: &[u8]) -> io::Result<()> {
        self.out.lock().send(buf);
        Ok(())
    }

    fn recv(&mut self) -> io::Result<Option<Vec<u8>>> {
        Ok(self.inbound.lock().recv())
    }
}

// ---------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------

/// Largest datagram a [`UdpLink`] will receive. Data datagrams are far
/// smaller (the sender chunks spans), so 64 KiB is simply the UDP cap.
const MAX_DATAGRAM: usize = 65_535;

/// A non-blocking UDP endpoint speaking to one fixed peer.
pub struct UdpLink {
    sock: UdpSocket,
    peer: SocketAddr,
    buf: Vec<u8>,
}

impl UdpLink {
    /// Bind `local` and fix `peer` as the only counterparty; datagrams
    /// from other sources are dropped.
    pub fn bind(local: impl ToSocketAddrs, peer: impl ToSocketAddrs) -> io::Result<UdpLink> {
        let sock = UdpSocket::bind(local)?;
        sock.set_nonblocking(true)?;
        let peer = peer
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no peer address"))?;
        Ok(UdpLink {
            sock,
            peer,
            buf: vec![0; MAX_DATAGRAM],
        })
    }

    /// The bound local address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.sock.local_addr()
    }

    /// Bind two endpoints on ephemeral localhost ports, wired to each
    /// other — the real-network (loopback-interface) counterpart of
    /// [`LoopbackLink::pair`], for soak tests driving actual OS
    /// sockets.
    pub fn pair_localhost() -> io::Result<(UdpLink, UdpLink)> {
        let a = UdpSocket::bind("127.0.0.1:0")?;
        let b = UdpSocket::bind("127.0.0.1:0")?;
        a.set_nonblocking(true)?;
        b.set_nonblocking(true)?;
        let a_addr = a.local_addr()?;
        let b_addr = b.local_addr()?;
        Ok((
            UdpLink {
                sock: a,
                peer: b_addr,
                buf: vec![0; MAX_DATAGRAM],
            },
            UdpLink {
                sock: b,
                peer: a_addr,
                buf: vec![0; MAX_DATAGRAM],
            },
        ))
    }
}

impl Datagram for UdpLink {
    fn send(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.sock.send_to(buf, self.peer) {
            Ok(_) => Ok(()),
            // A full socket buffer is datagram loss, not a transport
            // error — exactly what the rateless protocol tolerates.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn recv(&mut self) -> io::Result<Option<Vec<u8>>> {
        loop {
            match self.sock.recv_from(&mut self.buf) {
                Ok((len, from)) => {
                    if from != self.peer {
                        continue; // not our counterparty
                    }
                    return Ok(Some(self.buf[..len].to_vec()));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinal_channel::Complex;

    fn data_packet(seq: u32, ys: Vec<Complex>) -> Vec<u8> {
        Packet::Data {
            transfer_id: 1,
            seq,
            block: 0,
            offset: 0,
            payload: Payload::Symbols(ys),
        }
        .encode()
    }

    #[test]
    fn clean_loopback_is_transparent_both_ways() {
        let (mut a, mut b) = LoopbackLink::clean_pair(1);
        a.send(&data_packet(0, vec![Complex::new(1.0, -1.0)]))
            .unwrap();
        assert_eq!(
            b.recv().unwrap().unwrap(),
            data_packet(0, vec![Complex::new(1.0, -1.0)])
        );
        b.send(b"feedback").unwrap();
        assert_eq!(a.recv().unwrap().unwrap(), b"feedback");
        assert_eq!(a.recv().unwrap(), None);
        assert_eq!(b.recv().unwrap(), None);
    }

    #[test]
    fn awgn_direction_corrupts_symbols_but_not_framing() {
        let (mut a, mut b) = LoopbackLink::pair(
            NoiseModel::Awgn { snr_db: 10.0 },
            Impairments::clean(),
            Impairments::clean(),
            7,
        );
        let tx = vec![Complex::new(1.0, 0.0), Complex::new(0.0, 1.0)];
        a.send(&data_packet(5, tx.clone())).unwrap();
        let got = Packet::decode(&b.recv().unwrap().unwrap()).expect("frame intact");
        match got {
            Packet::Data {
                seq,
                payload: Payload::Symbols(ys),
                ..
            } => {
                assert_eq!(seq, 5, "header must pass clean");
                assert_eq!(ys.len(), tx.len());
                assert!(ys != tx, "noise must have perturbed the symbols");
            }
            other => panic!("unexpected packet {other:?}"),
        }
    }

    #[test]
    fn rayleigh_direction_attaches_csi() {
        let (mut a, mut b) = LoopbackLink::pair(
            NoiseModel::Rayleigh {
                snr_db: 20.0,
                tau: 2,
            },
            Impairments::clean(),
            Impairments::clean(),
            9,
        );
        a.send(&data_packet(0, vec![Complex::ONE; 4])).unwrap();
        match Packet::decode(&b.recv().unwrap().unwrap()).unwrap() {
            Packet::Data {
                payload: Payload::SymbolsCsi(pairs),
                ..
            } => assert_eq!(pairs.len(), 4),
            other => panic!("expected CSI payload, got {other:?}"),
        }
    }

    #[test]
    fn control_datagrams_skip_noise_entirely() {
        let (mut a, mut b) = LoopbackLink::pair(
            NoiseModel::Awgn { snr_db: -10.0 },
            Impairments::clean(),
            Impairments::clean(),
            3,
        );
        let init = Packet::Init {
            transfer_id: 2,
            payload_len: 100,
            n_blocks: 4,
            block_bits: 256,
            resume: vec![],
        }
        .encode();
        a.send(&init).unwrap();
        assert_eq!(b.recv().unwrap().unwrap(), init);
    }

    #[test]
    fn lossy_direction_drops_datagrams_deterministically() {
        let run = |seed: u64| {
            let (mut a, mut b) = LoopbackLink::pair(
                NoiseModel::Clean,
                Impairments {
                    loss: 0.5,
                    dup: 0.0,
                    reorder: 0.0,
                    reorder_span: 4,
                },
                Impairments::clean(),
                seed,
            );
            let mut got = Vec::new();
            for seq in 0..50 {
                a.send(&data_packet(seq, vec![])).unwrap();
            }
            while let Some(d) = b.recv().unwrap() {
                got.push(d);
            }
            got
        };
        let first = run(11);
        assert!(first.len() < 50, "some datagrams must drop");
        assert!(!first.is_empty(), "some datagrams must survive");
        assert_eq!(first, run(11), "same seed, same fate");
    }

    #[test]
    fn udp_link_roundtrips_datagrams() {
        let a_probe = UdpSocket::bind("127.0.0.1:0").unwrap();
        let a_addr = a_probe.local_addr().unwrap();
        drop(a_probe);
        let mut a = UdpLink::bind(a_addr, "127.0.0.1:9").unwrap(); // peer fixed below
        let mut b = UdpLink::bind("127.0.0.1:0", a.local_addr().unwrap()).unwrap();
        a.peer = b.local_addr().unwrap();
        a.send(b"ping").unwrap();
        // Non-blocking: poll briefly for arrival.
        let mut got = None;
        for _ in 0..100 {
            if let Some(d) = b.recv().unwrap() {
                got = Some(d);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got.as_deref(), Some(&b"ping"[..]));
        b.send(b"pong").unwrap();
        let mut back = None;
        for _ in 0..100 {
            if let Some(d) = a.recv().unwrap() {
                back = Some(d);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(back.as_deref(), Some(&b"pong"[..]));
    }
}
