//! Deterministic fault injection over any [`Datagram`] link.
//!
//! The loopback [`Impairer`](spinal_channel::Impairer) models the
//! *polite* failures of §7.1 — i.i.d. loss, duplication, reordering.
//! Real deployments also see the impolite ones: multi-datagram fades
//! (Gilbert–Elliott burst loss), dead air while a route flaps (blackout
//! windows), NIC retransmit storms (duplication bursts), bit rot
//! (payload corruption), and syscalls failing transiently. [`ChaosLink`]
//! wraps any link endpoint and injects all of these from one seeded
//! [`FaultPlan`], so an entire fault schedule replays byte-identically
//! from a single integer; [`FaultTrace`] records what was done to every
//! datagram and fingerprints it for determinism assertions.
//!
//! Faults are asymmetric by construction: each endpoint wraps its own
//! link with its own plan and seed, so the data path can burn while the
//! feedback path stays clean (or vice versa — the harder case for the
//! sender's backoff logic).
//!
//! Everything here is driven by link "time" measured in datagrams (the
//! send counter), never the wall clock — wall-clock faults would destroy
//! the same-seed ⇒ same-trace property the chaos soak asserts.

use crate::link::Datagram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spinal_channel::{GeParams, GilbertElliott};
use std::io;

/// A half-open window `[start, end)` of *send indices* during which the
/// link delivers nothing at all (route flap, deep fade, cable pull).
pub type BlackoutWindow = (u64, u64);

/// The full fault schedule for one wrapped endpoint. `Default` (and
/// [`FaultPlan::clean`]) injects nothing. Probabilities outside
/// `[0, 1]` are clamped at [`ChaosLink::new`] — this layer never
/// panics, by contract (it sits on the hostile-input path).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Time-correlated burst loss; `None` disables the chain entirely.
    pub ge: Option<GeParams>,
    /// Blackout windows over the send counter, each `[start, end)`.
    pub blackouts: Vec<BlackoutWindow>,
    /// Probability a surviving datagram is duplicated into a storm.
    pub dup_prob: f64,
    /// Extra copies per duplication storm, drawn uniformly from
    /// `1..=dup_max` (0 disables duplication even if `dup_prob > 0`).
    pub dup_max: usize,
    /// Probability a surviving datagram has one payload bit flipped.
    pub corrupt_prob: f64,
    /// Corruption never touches the first `corrupt_skip` bytes of a
    /// datagram, and datagrams no longer than it pass untouched. Set to
    /// [`crate::wire::DATA_PAYLOAD_OFFSET`] to model bit rot under an
    /// integrity-protected header (the wire format assumes the PHY
    /// frames headers error-free, §6); 0 (the default) corrupts
    /// anywhere — the raw-link fuzzing shape.
    pub corrupt_skip: usize,
    /// Probability `send` fails with a transient [`io::Error`]
    /// (`Interrupted`) instead of transmitting.
    pub send_err_prob: f64,
    /// Probability `recv` fails with a transient [`io::Error`]
    /// (`Interrupted`) instead of polling the inner link.
    pub recv_err_prob: f64,
}

impl FaultPlan {
    /// No faults at all: the wrapped link behaves exactly like the
    /// inner one.
    pub fn clean() -> Self {
        FaultPlan::default()
    }

    /// True when this plan can never alter a datagram.
    pub fn is_clean(&self) -> bool {
        self.ge.is_none()
            && self.blackouts.is_empty()
            && (self.dup_prob <= 0.0 || self.dup_max == 0)
            && self.corrupt_prob <= 0.0
            && self.send_err_prob <= 0.0
            && self.recv_err_prob <= 0.0
    }

    /// Clamp every probability into `[0, 1]` (including the GE chain's)
    /// so a hostile or fuzzed plan configures faults instead of
    /// panicking downstream.
    fn sanitized(&self) -> FaultPlan {
        let clamp = |p: f64| if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        FaultPlan {
            ge: self.ge.map(|g| GeParams {
                p_good_to_bad: clamp(g.p_good_to_bad),
                p_bad_to_good: clamp(g.p_bad_to_good),
                loss_good: clamp(g.loss_good),
                loss_bad: clamp(g.loss_bad),
            }),
            blackouts: self.blackouts.clone(),
            dup_prob: clamp(self.dup_prob),
            dup_max: self.dup_max,
            corrupt_prob: clamp(self.corrupt_prob),
            corrupt_skip: self.corrupt_skip,
            send_err_prob: clamp(self.send_err_prob),
            recv_err_prob: clamp(self.recv_err_prob),
        }
    }

    fn in_blackout(&self, index: u64) -> bool {
        self.blackouts
            .iter()
            .any(|&(start, end)| index >= start && index < end)
    }
}

/// One injected fault (or clean delivery), recorded per datagram in
/// send order. Recv-side faults carry the recv-call index instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Sent through untouched (`copies` = 1) or duplicated into a storm
    /// (`copies` > 1).
    Delivered {
        /// Send index of the datagram.
        index: u64,
        /// Total copies put on the inner link.
        copies: u32,
    },
    /// Swallowed by the Gilbert–Elliott chain's burst loss.
    BurstLost {
        /// Send index of the datagram.
        index: u64,
    },
    /// Swallowed by a blackout window.
    Blackout {
        /// Send index of the datagram.
        index: u64,
    },
    /// Delivered with one bit flipped.
    Corrupted {
        /// Send index of the datagram.
        index: u64,
        /// Byte position of the flipped bit.
        byte: u32,
        /// XOR mask applied to that byte (exactly one bit set).
        mask: u8,
    },
    /// `send` returned a transient `io::Error` instead of transmitting.
    SendError {
        /// Send index of the datagram.
        index: u64,
    },
    /// `recv` returned a transient `io::Error` instead of polling.
    RecvError {
        /// Index of the failed `recv` call.
        call: u64,
    },
}

/// Aggregate fault counts, cheap to assert on in soaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    /// Datagrams offered to `send`.
    pub sends: u64,
    /// Datagrams that reached the inner link at least once.
    pub delivered: u64,
    /// Datagrams swallowed by burst loss.
    pub burst_lost: u64,
    /// Datagrams swallowed by blackout windows.
    pub blacked_out: u64,
    /// Extra copies emitted by duplication storms.
    pub duplicates: u64,
    /// Datagrams delivered with a flipped bit.
    pub corrupted: u64,
    /// Transient errors injected on `send`.
    pub send_errors: u64,
    /// Transient errors injected on `recv`.
    pub recv_errors: u64,
}

/// The ordered record of everything a [`ChaosLink`] did, with a
/// deterministic fingerprint: same seed + same plan + same traffic ⇒
/// identical trace ⇒ identical fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultTrace {
    events: Vec<FaultEvent>,
}

impl FaultTrace {
    /// The recorded events in injection order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// FNV-1a over the event stream: a compact determinism witness
    /// (byte-identical traces ⇔ equal fingerprints, collisions aside).
    pub fn fingerprint(&self) -> u64 {
        fn eat(h: &mut u64, byte: u8) {
            *h ^= u64::from(byte);
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        fn eat_u64(h: &mut u64, v: u64) {
            for b in v.to_le_bytes() {
                eat(h, b);
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for ev in &self.events {
            match *ev {
                FaultEvent::Delivered { index, copies } => {
                    eat(&mut h, 1);
                    eat_u64(&mut h, index);
                    eat_u64(&mut h, u64::from(copies));
                }
                FaultEvent::BurstLost { index } => {
                    eat(&mut h, 2);
                    eat_u64(&mut h, index);
                }
                FaultEvent::Blackout { index } => {
                    eat(&mut h, 3);
                    eat_u64(&mut h, index);
                }
                FaultEvent::Corrupted { index, byte, mask } => {
                    eat(&mut h, 4);
                    eat_u64(&mut h, index);
                    eat_u64(&mut h, u64::from(byte));
                    eat_u64(&mut h, u64::from(mask));
                }
                FaultEvent::SendError { index } => {
                    eat(&mut h, 5);
                    eat_u64(&mut h, index);
                }
                FaultEvent::RecvError { call } => {
                    eat(&mut h, 6);
                    eat_u64(&mut h, call);
                }
            }
        }
        h
    }

    fn record(&mut self, ev: FaultEvent) {
        self.events.push(ev);
    }
}

/// A fault-injecting wrapper around any [`Datagram`] endpoint (see the
/// module docs). Send-side and recv-side faults draw from independent
/// RNG streams, so the send trace does not depend on how often the far
/// side polls.
#[derive(Debug)]
pub struct ChaosLink<L> {
    inner: L,
    plan: FaultPlan,
    ge: Option<GilbertElliott>,
    send_rng: StdRng,
    recv_rng: StdRng,
    sends: u64,
    recv_calls: u64,
    trace: FaultTrace,
    counters: FaultCounters,
}

impl<L> ChaosLink<L> {
    /// Wrap `inner` under `plan`; every injected fault is a pure
    /// function of `(plan, seed, traffic)`.
    pub fn new(inner: L, plan: FaultPlan, seed: u64) -> Self {
        let plan = plan.sanitized();
        ChaosLink {
            ge: plan
                .ge
                .map(|g| GilbertElliott::new(g, seed ^ 0x6E1B_0F5A_D00D_FEED)),
            inner,
            plan,
            send_rng: StdRng::seed_from_u64(seed),
            recv_rng: StdRng::seed_from_u64(seed ^ 0x5EED_0000_0000_0001),
            sends: 0,
            recv_calls: 0,
            trace: FaultTrace::default(),
            counters: FaultCounters::default(),
        }
    }

    /// The active (sanitized) fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The fault record so far.
    pub fn trace(&self) -> &FaultTrace {
        &self.trace
    }

    /// Aggregate fault counts so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// Shorthand for `trace().fingerprint()`.
    pub fn fingerprint(&self) -> u64 {
        self.trace.fingerprint()
    }

    /// Unwrap, discarding the chaos state.
    pub fn into_inner(self) -> L {
        self.inner
    }

    /// The wrapped link.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// Mutable access to the wrapped link.
    pub fn inner_mut(&mut self) -> &mut L {
        &mut self.inner
    }
}

impl<L: Datagram> Datagram for ChaosLink<L> {
    fn send(&mut self, buf: &[u8]) -> io::Result<()> {
        let index = self.sends;
        self.sends += 1;
        self.counters.sends += 1;
        // Transient syscall failure: the datagram never reaches the
        // wire, and the caller is expected to classify-and-continue.
        if self.plan.send_err_prob > 0.0 && self.send_rng.gen::<f64>() < self.plan.send_err_prob {
            self.counters.send_errors += 1;
            self.trace.record(FaultEvent::SendError { index });
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "chaos: injected transient send failure",
            ));
        }
        // The burst-loss chain ticks on every datagram that reached the
        // wire, blackout or not: fades keep evolving while a route is
        // down.
        let burst_lost = self.ge.as_mut().is_some_and(|ge| ge.step());
        if self.plan.in_blackout(index) {
            self.counters.blacked_out += 1;
            self.trace.record(FaultEvent::Blackout { index });
            return Ok(());
        }
        if burst_lost {
            self.counters.burst_lost += 1;
            self.trace.record(FaultEvent::BurstLost { index });
            return Ok(());
        }
        // Corruption: flip exactly one bit, position drawn uniformly
        // from the eligible (post-header-guard) region.
        let mut corrupted: Option<Vec<u8>> = None;
        let eligible = buf.len().saturating_sub(self.plan.corrupt_skip);
        if self.plan.corrupt_prob > 0.0
            && eligible > 0
            && self.send_rng.gen::<f64>() < self.plan.corrupt_prob
        {
            let pos = self.plan.corrupt_skip + (self.send_rng.gen::<u64>() as usize) % eligible;
            let mask = 1u8 << (self.send_rng.gen::<u64>() % 8);
            let mut copy = buf.to_vec();
            if let Some(byte) = copy.get_mut(pos) {
                *byte ^= mask;
                self.counters.corrupted += 1;
                self.trace.record(FaultEvent::Corrupted {
                    index,
                    byte: pos as u32,
                    mask,
                });
                corrupted = Some(copy);
            }
        }
        // Duplication storm: 1 original + up to dup_max extra copies.
        let mut copies: u32 = 1;
        if self.plan.dup_prob > 0.0
            && self.plan.dup_max > 0
            && self.send_rng.gen::<f64>() < self.plan.dup_prob
        {
            let extra = 1 + (self.send_rng.gen::<u64>() as usize) % self.plan.dup_max;
            copies += extra as u32;
            self.counters.duplicates += extra as u64;
        }
        if corrupted.is_none() {
            self.trace.record(FaultEvent::Delivered { index, copies });
        }
        self.counters.delivered += 1;
        let wire: &[u8] = corrupted.as_deref().unwrap_or(buf);
        for _ in 0..copies {
            self.inner.send(wire)?;
        }
        Ok(())
    }

    fn recv(&mut self) -> io::Result<Option<Vec<u8>>> {
        let call = self.recv_calls;
        self.recv_calls += 1;
        if self.plan.recv_err_prob > 0.0 && self.recv_rng.gen::<f64>() < self.plan.recv_err_prob {
            self.counters.recv_errors += 1;
            self.trace.record(FaultEvent::RecvError { call });
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "chaos: injected transient recv failure",
            ));
        }
        self.inner.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LoopbackLink;

    /// Drive `n` sends of distinct payloads through a chaos wrapper on
    /// a clean loopback and return (trace, far-end arrivals).
    fn drive(plan: FaultPlan, seed: u64, n: u64) -> (FaultTrace, Vec<Vec<u8>>) {
        let (tx, mut rx) = LoopbackLink::clean_pair(0);
        let mut chaos = ChaosLink::new(tx, plan, seed);
        for i in 0..n {
            let buf = i.to_le_bytes();
            // Transient injected errors are part of the schedule.
            let _ = chaos.send(&buf);
        }
        let mut got = Vec::new();
        while let Ok(Some(buf)) = rx.recv() {
            got.push(buf);
        }
        (chaos.trace().clone(), got)
    }

    fn stormy_plan() -> FaultPlan {
        FaultPlan {
            ge: Some(GeParams {
                p_good_to_bad: 0.05,
                p_bad_to_good: 0.3,
                loss_good: 0.02,
                loss_bad: 0.9,
            }),
            blackouts: vec![(40, 60), (150, 170)],
            dup_prob: 0.1,
            dup_max: 3,
            corrupt_prob: 0.05,
            corrupt_skip: 0,
            send_err_prob: 0.03,
            recv_err_prob: 0.02,
        }
    }

    #[test]
    fn clean_plan_is_the_identity() {
        let (trace, got) = drive(FaultPlan::clean(), 7, 50);
        assert_eq!(got.len(), 50);
        for (i, buf) in got.iter().enumerate() {
            assert_eq!(buf, &(i as u64).to_le_bytes());
        }
        assert!(trace
            .events()
            .iter()
            .all(|ev| matches!(ev, FaultEvent::Delivered { copies: 1, .. })));
        assert!(FaultPlan::clean().is_clean());
        assert!(!stormy_plan().is_clean());
    }

    #[test]
    fn same_seed_reproduces_byte_identical_trace() {
        let (t1, got1) = drive(stormy_plan(), 42, 400);
        let (t2, got2) = drive(stormy_plan(), 42, 400);
        assert_eq!(t1, t2, "same seed must replay the identical schedule");
        assert_eq!(t1.fingerprint(), t2.fingerprint());
        assert_eq!(got1, got2);
        let (t3, _) = drive(stormy_plan(), 43, 400);
        assert_ne!(t1.fingerprint(), t3.fingerprint());
    }

    #[test]
    fn blackout_window_swallows_exactly_its_range() {
        let plan = FaultPlan {
            blackouts: vec![(10, 20)],
            ..FaultPlan::clean()
        };
        let (trace, got) = drive(plan, 1, 30);
        assert_eq!(got.len(), 20);
        let blacked: Vec<u64> = trace
            .events()
            .iter()
            .filter_map(|ev| match ev {
                FaultEvent::Blackout { index } => Some(*index),
                _ => None,
            })
            .collect();
        assert_eq!(blacked, (10..20).collect::<Vec<_>>());
    }

    #[test]
    fn corruption_flips_exactly_one_recorded_bit() {
        let plan = FaultPlan {
            corrupt_prob: 1.0,
            ..FaultPlan::clean()
        };
        let (trace, got) = drive(plan, 9, 20);
        assert_eq!(got.len(), 20);
        for (ev, buf) in trace.events().iter().zip(&got) {
            match *ev {
                FaultEvent::Corrupted { index, byte, mask } => {
                    let mut expect = index.to_le_bytes().to_vec();
                    if let Some(b) = expect.get_mut(byte as usize) {
                        *b ^= mask;
                    }
                    assert_eq!(buf, &expect);
                    assert_eq!(mask.count_ones(), 1);
                }
                ref other => panic!("expected Corrupted, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_skip_guards_the_header_region() {
        // drive() sends 8-byte payloads: with an 8-byte guard nothing
        // is eligible, so every datagram passes untouched even at
        // probability 1.
        let plan = FaultPlan {
            corrupt_prob: 1.0,
            corrupt_skip: 8,
            ..FaultPlan::clean()
        };
        let (trace, got) = drive(plan, 13, 20);
        assert_eq!(got.len(), 20);
        for (i, buf) in got.iter().enumerate() {
            assert_eq!(buf, &(i as u64).to_le_bytes());
        }
        assert!(trace
            .events()
            .iter()
            .all(|ev| matches!(ev, FaultEvent::Delivered { .. })));
        // With a 6-byte guard, the flipped byte is always past it.
        let plan = FaultPlan {
            corrupt_prob: 1.0,
            corrupt_skip: 6,
            ..FaultPlan::clean()
        };
        let (trace, _) = drive(plan, 13, 20);
        for ev in trace.events() {
            match *ev {
                FaultEvent::Corrupted { byte, .. } => assert!(byte >= 6, "byte {byte} in guard"),
                ref other => panic!("expected Corrupted, got {other:?}"),
            }
        }
    }

    #[test]
    fn duplication_storm_emits_recorded_copy_count() {
        let plan = FaultPlan {
            dup_prob: 1.0,
            dup_max: 2,
            ..FaultPlan::clean()
        };
        let (trace, got) = drive(plan, 5, 10);
        let copies_total: u32 = trace
            .events()
            .iter()
            .map(|ev| match ev {
                FaultEvent::Delivered { copies, .. } => *copies,
                _ => 0,
            })
            .sum();
        assert_eq!(got.len(), copies_total as usize);
        assert!(copies_total > 10, "storms must add copies");
    }

    #[test]
    fn injected_io_errors_are_transient_kind() {
        let plan = FaultPlan {
            send_err_prob: 1.0,
            recv_err_prob: 1.0,
            ..FaultPlan::clean()
        };
        let (tx, _rx) = LoopbackLink::clean_pair(0);
        let mut chaos = ChaosLink::new(tx, plan, 3);
        let err = chaos.send(b"x").expect_err("always fails");
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        let err = chaos.recv().expect_err("always fails");
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(chaos.counters().send_errors, 1);
        assert_eq!(chaos.counters().recv_errors, 1);
    }

    #[test]
    fn hostile_plan_probabilities_are_clamped_not_panicking() {
        let plan = FaultPlan {
            ge: Some(GeParams {
                p_good_to_bad: 7.0,
                p_bad_to_good: -3.0,
                loss_good: f64::NAN,
                loss_bad: 2.0,
            }),
            dup_prob: 99.0,
            dup_max: 1,
            corrupt_prob: -1.0,
            send_err_prob: f64::INFINITY,
            recv_err_prob: -0.5,
            ..FaultPlan::clean()
        };
        let (tx, _rx) = LoopbackLink::clean_pair(0);
        let chaos = ChaosLink::new(tx, plan, 1);
        let p = chaos.plan();
        assert_eq!(p.send_err_prob, 1.0);
        assert_eq!(p.corrupt_prob, 0.0);
        assert_eq!(p.recv_err_prob, 0.0);
        let ge = p.ge.expect("chain kept");
        assert_eq!(ge.p_good_to_bad, 1.0);
        assert_eq!(ge.p_bad_to_good, 0.0);
        assert_eq!(ge.loss_good, 0.0);
        assert_eq!(ge.loss_bad, 1.0);
    }
}
