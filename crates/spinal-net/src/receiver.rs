//! The receiving side: reorder buffer, incremental decode, feedback.
//!
//! Datagrams arrive late, twice, or never. Per block the receiver keeps
//! a reorder buffer keyed on the symbol `offset` each Data datagram
//! declares, and drains it *in schedule order* into the decoder's
//! receive buffer — the spine RNG indices only line up if observations
//! are folded in at their scheduled positions. A gap that outlives the
//! reordering horizon is declared lost and skipped
//! ([`RxSymbols::skip`]): the rateless stream compensates with later
//! symbols instead of retransmission (§7.1, the decoder "need not
//! generate the missing symbols").
//!
//! Decode attempts run at subpass boundaries (§5), each block through
//! its own [`Session`] on a [`DecodeService`]: the session owns the
//! receive buffer, the incremental table cache, a warm workspace, and
//! the block's schedule position, so every retry folds in only the new
//! observations. A block is done exactly when its CRC validates
//! ([`FrameReassembly`], §6). Feedback is a cumulative ACK bitmap; it
//! keeps flowing after completion so a sender that missed one feedback
//! datagram still learns to stop.
//!
//! A receiver holding salvaged bytes from an earlier interrupted
//! transfer ([`SpinalReceiver::seed_salvage`]) re-seeds those blocks the
//! moment an Init arrives whose resume bitmap claims them: the bytes are
//! re-framed, CRC-revalidated, and acknowledged immediately, so the
//! resumed transfer spends symbols only on the blocks that never
//! decoded.

use crate::link::Datagram;
use crate::wire::{Packet, Payload};
use spinal_core::{
    BubbleDecoder, CodeParams, DecodeService, FrameBuilder, FrameReassembly, RxBits, RxSymbols,
    Schedule, ServiceConfig, Session, SessionBuffer, SessionOptions,
};
use std::collections::BTreeMap;
use std::io;
use std::sync::Arc;

/// Receiver-side knobs.
#[derive(Debug, Clone, Copy)]
pub struct ReceiverConfig {
    /// Pass budget per block: decode attempts stop once this many
    /// passes' worth of subpass boundaries have been tried.
    pub max_passes: usize,
    /// A gap at the drain cursor is declared lost (and skipped) once
    /// buffered observations extend this many symbols past it. Must
    /// exceed the link's realistic reordering depth, in symbols.
    pub skip_horizon: usize,
    /// Cap on out-of-order spans buffered per block. A duplicating or
    /// hostile link can otherwise grow the reorder buffer without
    /// bound; past the cap the farthest-ahead span is evicted (the
    /// rateless stream re-covers it with later symbols) and counted in
    /// [`SpinalReceiver::reorder_evictions`].
    pub max_pending_spans: usize,
}

impl Default for ReceiverConfig {
    fn default() -> Self {
        ReceiverConfig {
            max_passes: 8,
            skip_horizon: 96,
            max_pending_spans: 64,
        }
    }
}

/// A fresh session buffer matching the payload kind of the first span.
fn buffer_for_payload(payload: &Payload, schedule: &Schedule) -> SessionBuffer {
    match payload {
        Payload::Bits(_) => SessionBuffer::Bits(RxBits::new(schedule.clone())),
        _ => SessionBuffer::Symbols(RxSymbols::new(schedule.clone())),
    }
}

fn buffer_skip(buf: &mut SessionBuffer, count: usize) {
    match buf {
        SessionBuffer::Symbols(rx) => rx.skip(count),
        SessionBuffer::Bits(rx) => rx.skip(count),
    }
}

/// Fold a span into the session buffer, minus its first `skip_within`
/// observations (already consumed at the cursor by an earlier
/// overlapping span). Returns false — folding nothing — if the payload
/// kind does not match the buffer (an alien or corrupted datagram).
fn buffer_push_tail(buf: &mut SessionBuffer, payload: &Payload, skip_within: usize) -> bool {
    match (buf, payload) {
        (SessionBuffer::Symbols(rx), Payload::Symbols(ys)) => match ys.get(skip_within..) {
            Some(tail) => {
                rx.push(tail);
                true
            }
            None => false,
        },
        (SessionBuffer::Symbols(rx), Payload::SymbolsCsi(pairs)) => {
            match pairs.get(skip_within..) {
                Some(tail) => {
                    let (ys, hs): (Vec<_>, Vec<_>) = tail.iter().copied().unzip();
                    rx.push_with_csi(&ys, &hs);
                    true
                }
                None => false,
            }
        }
        (SessionBuffer::Bits(rx), Payload::Bits(bits)) => match bits.get(skip_within..) {
            Some(tail) => {
                rx.push(tail);
                true
            }
            None => false,
        },
        _ => false,
    }
}

/// Per-block receive state.
struct BlockState {
    /// The block's decode session, opened from the first span's payload
    /// kind (it owns the observation buffer, table cache, workspace,
    /// and subpass position).
    session: Option<Session>,
    /// Out-of-order spans waiting for the cursor, keyed by offset.
    pending: BTreeMap<u32, Payload>,
    /// Next schedule offset the buffer expects.
    cursor: u32,
    decoded: bool,
}

impl BlockState {
    fn new() -> Self {
        BlockState {
            session: None,
            pending: BTreeMap::new(),
            cursor: 0,
            decoded: false,
        }
    }

    /// Buffer an out-of-order span, holding the reorder buffer at
    /// `cap` entries. When full, the span farthest ahead of the cursor
    /// is discarded — it is the least likely to drain soon, and the
    /// rateless stream re-covers its observations with later symbols.
    /// Returns the number of spans evicted (0 or 1).
    fn stash(&mut self, offset: u32, payload: Payload, cap: usize) -> u64 {
        if self.pending.contains_key(&offset) {
            return 0; // duplicate of a buffered span
        }
        if self.pending.len() >= cap.max(1) {
            let Some((&farthest, _)) = self.pending.last_key_value() else {
                return 0;
            };
            if offset >= farthest {
                return 1; // incoming span is the farthest ahead: drop it
            }
            self.pending.remove(&farthest);
            self.pending.insert(offset, payload);
            return 1;
        }
        self.pending.insert(offset, payload);
        0
    }

    /// Move pending spans into the session's observation buffer in
    /// schedule order; returns true if any observations were folded in.
    /// If the service sheds the session (admission backpressure), the
    /// spans stay pending and the next datagram retries.
    fn drain(
        &mut self,
        service: &DecodeService,
        decoder: &Arc<BubbleDecoder>,
        schedule: &Schedule,
        skip_horizon: usize,
    ) -> bool {
        let mut moved = false;
        loop {
            // Open the session lazily, keyed on the first span's kind.
            if self.session.is_none() {
                let Some((_, probe)) = self.pending.first_key_value() else {
                    break;
                };
                let buffer = buffer_for_payload(probe, schedule);
                match service.open_session(decoder, buffer, SessionOptions::default()) {
                    Ok(s) => self.session = Some(s),
                    Err(_) => return moved, // shed: retry on a later datagram
                }
            }
            let Some(buf) = self.session.as_mut().and_then(|s| s.buffer_mut()) else {
                return moved; // attempt in flight; cannot happen on this sync path
            };
            // In-order (or cursor-overlapping) spans first.
            while let Some((&off, _)) = self.pending.first_key_value() {
                if off > self.cursor {
                    break;
                }
                let Some(payload) = self.pending.remove(&off) else {
                    break;
                };
                let end = off as usize + payload.len();
                if end <= self.cursor as usize {
                    continue; // stale duplicate, fully behind the cursor
                }
                let skip_within = (self.cursor - off) as usize;
                if buffer_push_tail(buf, &payload, skip_within) {
                    self.cursor = end as u32;
                    moved = true;
                }
            }
            // A leading gap: declare it lost once buffered observations
            // extend far enough past the cursor that reordering can no
            // longer explain the hole.
            let Some((&first, _)) = self.pending.first_key_value() else {
                break;
            };
            let buffered_end = self
                .pending
                .iter()
                .map(|(&off, p)| off as usize + p.len())
                .max()
                .unwrap_or(0);
            if buffered_end < self.cursor as usize + skip_horizon {
                break; // the gap may still fill in; wait
            }
            let gap = (first - self.cursor) as usize;
            buffer_skip(buf, gap);
            self.cursor = first;
        }
        moved
    }

    /// Attempt a decode if the buffer has crossed the next subpass
    /// boundary; returns true if a decode ran. The attempt goes through
    /// the block's session: submit, then wait on the session's own
    /// completion handle (no cross-block interference).
    fn try_decode(
        &mut self,
        boundaries: &[usize],
        reassembly: &mut FrameReassembly,
        block_idx: usize,
    ) -> bool {
        let Some(session) = self.session.as_mut() else {
            return false;
        };
        let Some(buf) = session.buffer() else {
            return false; // attempt already in flight
        };
        let received = buf.symbols_received();
        let mut bidx = session.position();
        let Some(&next_boundary) = boundaries.get(bidx) else {
            return false; // pass budget exhausted
        };
        if received < next_boundary {
            return false; // not enough new observations yet
        }
        // Consume every boundary the buffer has already sailed past:
        // one attempt per drain is enough.
        while boundaries.get(bidx).is_some_and(|&b| b <= received) {
            bidx += 1;
        }
        if session.submit().is_err() {
            // Queue backpressure: position unchanged, so the same
            // boundary is retried on the next datagram.
            return false;
        }
        session.set_position(bidx);
        // A structured failure (worker panic / watchdog cancel) ends
        // the attempt without a result; the session already recovered
        // or rebuilt its resources, so the rateless loop just keeps
        // collecting symbols and retries at the next boundary.
        let Some(Ok(result)) = session.wait() else {
            return false;
        };
        if reassembly.offer(block_idx, &result.message) {
            self.decoded = true;
            self.pending.clear(); // block finished; drop leftover spans
            self.session = None; // release the admission slot
        }
        true
    }
}

/// One in-progress transfer.
struct TransferState {
    transfer_id: u64,
    reassembly: FrameReassembly,
    blocks: Vec<BlockState>,
    /// One decoder shared by every block session for the transfer's
    /// lifetime — no per-attempt decoder clones.
    decoder: Arc<BubbleDecoder>,
    boundaries: Vec<usize>,
    datagrams_received: u32,
}

/// Rateless receiver (see the module docs). Construct once with the
/// agreed code parameters; transfer geometry (length, block count)
/// arrives in the Init datagram.
pub struct SpinalReceiver {
    params: CodeParams,
    schedule: Schedule,
    cfg: ReceiverConfig,
    service: DecodeService,
    transfer: Option<TransferState>,
    decode_attempts: usize,
    reorder_evictions: u64,
    /// Salvaged per-block bytes from an earlier interrupted transfer,
    /// keyed by the transfer id they may resume under.
    salvage: Option<(u64, Vec<Option<Vec<u8>>>)>,
    resumed_blocks: usize,
}

impl SpinalReceiver {
    /// Create a receiver for links whose sender uses `params`, with a
    /// private single-threaded [`DecodeService`] (every decode attempt
    /// runs inline — the zero-dependency default).
    pub fn new(params: &CodeParams, cfg: ReceiverConfig) -> Self {
        Self::with_service(params, cfg, DecodeService::new(1, ServiceConfig::default()))
    }

    /// Create a receiver whose block sessions run on `service` — share
    /// one service (and its engine, queue, and metrics) across many
    /// receivers to get the many-session operating shape.
    pub fn with_service(params: &CodeParams, cfg: ReceiverConfig, service: DecodeService) -> Self {
        assert!(cfg.max_passes >= 1, "max_passes must be at least 1");
        assert!(cfg.skip_horizon >= 1, "skip_horizon must be at least 1");
        SpinalReceiver {
            params: params.clone(),
            schedule: Schedule::new(params.num_spines(), params.tail, params.puncturing),
            cfg,
            service,
            transfer: None,
            decode_attempts: 0,
            reorder_evictions: 0,
            salvage: None,
            resumed_blocks: 0,
        }
    }

    /// Stage salvaged per-block bytes (the
    /// [`PartialDelivery`](crate::TransferOutcome::PartialDelivery)
    /// blocks of an interrupted transfer) for re-seeding when an Init
    /// for `transfer_id` arrives with a matching resume bitmap. The
    /// bytes are trusted — they were CRC-accepted when salvaged — and
    /// only blocks the Init's resume bitmap also claims are re-seeded;
    /// anything else decodes from symbols like any other block.
    pub fn seed_salvage(&mut self, transfer_id: u64, blocks: Vec<Option<Vec<u8>>>) {
        self.salvage = Some((transfer_id, blocks));
    }

    /// The decode service backing this receiver's block sessions.
    pub fn service(&self) -> &DecodeService {
        &self.service
    }

    /// Drain every queued datagram, then send one cumulative feedback
    /// datagram if a transfer is active. The usual per-round call.
    pub fn pump<L: Datagram>(&mut self, link: &mut L) -> io::Result<()> {
        while let Some(buf) = link.recv()? {
            if let Some(pkt) = Packet::decode(&buf) {
                self.handle(pkt);
            }
        }
        if let Some(fb) = self.feedback() {
            link.send(&fb.encode())?;
        }
        Ok(())
    }

    /// Apply one parsed datagram to receiver state.
    pub fn handle(&mut self, pkt: Packet) {
        match pkt {
            Packet::Init {
                transfer_id,
                payload_len,
                n_blocks,
                block_bits,
                resume,
            } => self.handle_init(transfer_id, payload_len, n_blocks, block_bits, &resume),
            Packet::Data {
                transfer_id,
                block,
                offset,
                payload,
                ..
            } => self.handle_data(transfer_id, block, offset, payload),
            // Feedback flows the other way; a looped-back one is noise.
            Packet::Feedback { .. } => {}
        }
    }

    fn handle_init(
        &mut self,
        transfer_id: u64,
        payload_len: u32,
        n_blocks: u16,
        block_bits: u32,
        resume: &[bool],
    ) {
        if block_bits as usize != self.params.n || n_blocks == 0 {
            return; // geometry we cannot decode
        }
        if let Some(t) = &self.transfer {
            if t.transfer_id == transfer_id {
                return; // duplicate Init for the active transfer
            }
        }
        let builder = FrameBuilder::new(self.params.n);
        let mut t = TransferState {
            transfer_id,
            reassembly: FrameReassembly::new(
                builder.clone(),
                0,
                n_blocks as usize,
                payload_len as usize,
            ),
            blocks: (0..n_blocks).map(|_| BlockState::new()).collect(),
            decoder: Arc::new(BubbleDecoder::new(&self.params)),
            boundaries: self
                .schedule
                .subpass_boundaries(self.cfg.max_passes * self.schedule.symbols_per_pass()),
            datagrams_received: 0,
        };
        // Resume: re-seed every block the sender pre-acknowledged from
        // the salvage staged for this transfer. The sender will emit no
        // symbols for these blocks, so the salvaged bytes are their
        // only source.
        if !resume.is_empty() {
            if let Some((salvage_id, staged)) = &self.salvage {
                if *salvage_id == transfer_id {
                    for (idx, bytes) in staged.iter().enumerate() {
                        let (Some(true), Some(bytes)) = (resume.get(idx).copied(), bytes) else {
                            continue;
                        };
                        // Re-frame the salvaged bytes exactly as the
                        // sender framed the original block (zero-padded
                        // payload + CRC) and offer it for reassembly.
                        let candidates = builder.build(bytes);
                        let Some(framed) = candidates.first() else {
                            continue;
                        };
                        if t.reassembly.offer(idx, framed) {
                            if let Some(state) = t.blocks.get_mut(idx) {
                                state.decoded = true;
                            }
                            self.resumed_blocks += 1;
                        }
                    }
                }
            }
        }
        self.transfer = Some(t);
    }

    fn handle_data(&mut self, transfer_id: u64, block: u16, offset: u32, payload: Payload) {
        let Some(t) = &mut self.transfer else {
            return; // Init not seen yet; the sender will re-send it
        };
        if t.transfer_id != transfer_id {
            return;
        }
        let Some(state) = t.blocks.get_mut(block as usize) else {
            return;
        };
        t.datagrams_received += 1;
        if state.decoded || payload.is_empty() {
            return;
        }
        // Stash the span unless it is entirely behind the cursor (a
        // duplicate of something already drained or skipped). The
        // reorder buffer is capped; overflow evicts the farthest span.
        if offset as usize + payload.len() > state.cursor as usize {
            self.reorder_evictions += state.stash(offset, payload, self.cfg.max_pending_spans);
        }
        if state.drain(
            &self.service,
            &t.decoder,
            &self.schedule,
            self.cfg.skip_horizon,
        ) && state.try_decode(&t.boundaries, &mut t.reassembly, block as usize)
        {
            self.decode_attempts += 1;
        }
    }

    /// The cumulative feedback datagram for the active transfer, if any.
    pub fn feedback(&self) -> Option<Packet> {
        let t = self.transfer.as_ref()?;
        Some(Packet::Feedback {
            transfer_id: t.transfer_id,
            received: t.datagrams_received,
            decoded: t.reassembly.ack_bitmap(),
        })
    }

    /// True once every block of the active transfer has decoded.
    pub fn complete(&self) -> bool {
        self.transfer
            .as_ref()
            .is_some_and(|t| t.reassembly.complete())
    }

    /// The delivered payload, once [`SpinalReceiver::complete`].
    pub fn payload(&self) -> Option<Vec<u8>> {
        self.transfer
            .as_ref()
            .and_then(|t| t.reassembly.clone().into_datagram())
    }

    /// Decode attempts run so far (across all blocks) — the receiver's
    /// compute-cost counter.
    pub fn decode_attempts(&self) -> usize {
        self.decode_attempts
    }

    /// Spans discarded because a block's reorder buffer hit
    /// [`ReceiverConfig::max_pending_spans`] — the memory-bound
    /// accounting surfaced in `TransferReport`.
    pub fn reorder_evictions(&self) -> u64 {
        self.reorder_evictions
    }

    /// Blocks re-seeded from staged salvage on a resumed transfer —
    /// these cost zero symbols and zero decode attempts.
    pub fn resumed_blocks(&self) -> usize {
        self.resumed_blocks
    }

    /// Out-of-order spans currently buffered across all blocks; bounded
    /// by `n_blocks × max_pending_spans` by construction.
    pub fn pending_spans(&self) -> usize {
        self.transfer
            .as_ref()
            .map(|t| t.blocks.iter().map(|b| b.pending.len()).sum())
            .unwrap_or(0)
    }

    /// Blocks whose CRC has validated so far.
    pub fn blocks_decoded(&self) -> usize {
        self.transfer
            .as_ref()
            .map(|t| t.reassembly.blocks_decoded())
            .unwrap_or(0)
    }

    /// Blocks in the active transfer (0 before Init arrives).
    pub fn n_blocks(&self) -> usize {
        self.transfer
            .as_ref()
            .map(|t| t.reassembly.n_blocks())
            .unwrap_or(0)
    }

    /// The CRC-accepted payload bytes per block (`None` = missing) —
    /// what a caller salvages when the transfer ends degraded. Empty
    /// before Init arrives.
    pub fn partial_blocks(&self) -> Vec<Option<Vec<u8>>> {
        self.transfer
            .as_ref()
            .map(|t| t.reassembly.block_payloads())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinal_core::{Encoder, Message};

    fn params() -> CodeParams {
        CodeParams::default().with_n(64).with_b(32)
    }

    fn init_pkt(n_blocks: u16, payload_len: u32) -> Packet {
        Packet::Init {
            transfer_id: 1,
            payload_len,
            n_blocks,
            block_bits: 64,
            resume: vec![],
        }
    }

    /// Clean noiseless spans for one block of `payload`, chunked.
    fn spans(p: &CodeParams, msg: &Message, total: usize, chunk: usize) -> Vec<(u32, Payload)> {
        let mut enc = Encoder::new(p, msg);
        let mut out = Vec::new();
        let mut off = 0usize;
        while off < total {
            let count = chunk.min(total - off);
            out.push((off as u32, Payload::Symbols(enc.next_symbols(count))));
            off += count;
        }
        out
    }

    fn data_pkt(block: u16, off: u32, payload: Payload) -> Packet {
        Packet::Data {
            transfer_id: 1,
            seq: 0,
            block,
            offset: off,
            payload,
        }
    }

    #[test]
    fn in_order_delivery_decodes_and_acks() {
        let p = params();
        let payload = b"hello";
        let msg = FrameBuilder::new(p.n).build(payload).remove(0);
        let mut r = SpinalReceiver::new(&p, ReceiverConfig::default());
        r.handle(init_pkt(1, payload.len() as u32));
        let spp = Schedule::new(p.num_spines(), p.tail, p.puncturing).symbols_per_pass();
        for (off, span) in spans(&p, &msg, 2 * spp, 7) {
            r.handle(data_pkt(0, off, span));
        }
        assert!(r.complete(), "clean 2-pass delivery must decode");
        assert_eq!(r.payload().unwrap(), payload.to_vec());
        match r.feedback().unwrap() {
            Packet::Feedback { decoded, .. } => assert_eq!(decoded, vec![true]),
            other => panic!("unexpected {other:?}"),
        }
        assert!(r.decode_attempts() >= 1);
    }

    #[test]
    fn reordered_and_duplicated_spans_still_decode() {
        let p = params();
        let payload = b"reordr";
        let msg = FrameBuilder::new(p.n).build(payload).remove(0);
        let mut r = SpinalReceiver::new(&p, ReceiverConfig::default());
        r.handle(init_pkt(1, payload.len() as u32));
        let spp = Schedule::new(p.num_spines(), p.tail, p.puncturing).symbols_per_pass();
        let mut all = spans(&p, &msg, 2 * spp, 5);
        // Swap adjacent pairs and duplicate every third span.
        for i in (0..all.len() - 1).step_by(2) {
            all.swap(i, i + 1);
        }
        let dups: Vec<_> = all.iter().step_by(3).cloned().collect();
        all.extend(dups);
        for (off, span) in all {
            r.handle(data_pkt(0, off, span));
        }
        assert!(r.complete());
        assert_eq!(r.payload().unwrap(), payload.to_vec());
    }

    #[test]
    fn lost_span_is_skipped_after_horizon_and_later_passes_recover() {
        let p = params();
        let payload = b"lossy";
        let msg = FrameBuilder::new(p.n).build(payload).remove(0);
        let cfg = ReceiverConfig {
            skip_horizon: 16,
            ..ReceiverConfig::default()
        };
        let mut r = SpinalReceiver::new(&p, cfg);
        r.handle(init_pkt(1, payload.len() as u32));
        let spp = Schedule::new(p.num_spines(), p.tail, p.puncturing).symbols_per_pass();
        // Drop the second span of the first pass entirely; send three
        // passes so the rateless stream compensates.
        for (i, (off, span)) in spans(&p, &msg, 3 * spp, 5).into_iter().enumerate() {
            if i == 1 {
                continue;
            }
            r.handle(data_pkt(0, off, span));
        }
        assert!(r.complete(), "loss within budget must still decode");
        assert_eq!(r.payload().unwrap(), payload.to_vec());
    }

    #[test]
    fn data_before_init_is_ignored_until_init_arrives() {
        let p = params();
        let payload = b"init";
        let msg = FrameBuilder::new(p.n).build(payload).remove(0);
        let mut r = SpinalReceiver::new(&p, ReceiverConfig::default());
        let spp = Schedule::new(p.num_spines(), p.tail, p.puncturing).symbols_per_pass();
        let all = spans(&p, &msg, 2 * spp, 9);
        // First pass arrives before Init: dropped on the floor.
        for (off, span) in &all[..all.len() / 2] {
            r.handle(data_pkt(0, *off, span.clone()));
        }
        assert!(r.feedback().is_none());
        r.handle(init_pkt(1, payload.len() as u32));
        // The sender keeps streaming (and the receiver skips the part it
        // never buffered): replay everything from the start as a sender
        // re-sending passes would not — instead deliver the full stream.
        for (off, span) in all {
            r.handle(data_pkt(0, off, span));
        }
        assert!(r.complete());
        assert_eq!(r.payload().unwrap(), payload.to_vec());
    }

    #[test]
    fn reorder_buffer_is_capped_and_evictions_are_counted() {
        let p = params();
        let payload = b"capped";
        let msg = FrameBuilder::new(p.n).build(payload).remove(0);
        let cfg = ReceiverConfig {
            max_pending_spans: 4,
            skip_horizon: 1_000_000, // never skip: everything must buffer
            ..ReceiverConfig::default()
        };
        let mut r = SpinalReceiver::new(&p, cfg);
        r.handle(init_pkt(1, payload.len() as u32));
        let spp = Schedule::new(p.num_spines(), p.tail, p.puncturing).symbols_per_pass();
        // A hostile stream of far-ahead spans with a permanent gap at
        // the cursor: nothing drains, so the buffer must clamp at the
        // cap and count every overflow.
        let far = spans(&p, &msg, 2 * spp, 3);
        let n_far = far.len() - 1;
        for (off, span) in far.into_iter().skip(1) {
            r.handle(data_pkt(0, off, span));
        }
        assert!(n_far > 4, "need more spans than the cap");
        assert_eq!(r.pending_spans(), 4, "buffer must clamp at the cap");
        assert_eq!(r.reorder_evictions(), (n_far - 4) as u64);
        assert_eq!(r.blocks_decoded(), 0);
        assert!(r.partial_blocks().iter().all(|b| b.is_none()));
    }

    #[test]
    fn partial_blocks_salvages_decoded_prefix() {
        let p = params();
        // Two blocks; deliver only block 0's symbols.
        let payload: Vec<u8> = (0u8..10).collect(); // 6-byte blocks → 2 blocks
        let msgs = FrameBuilder::new(p.n).build(&payload);
        assert_eq!(msgs.len(), 2);
        let mut r = SpinalReceiver::new(&p, ReceiverConfig::default());
        r.handle(init_pkt(2, payload.len() as u32));
        let spp = Schedule::new(p.num_spines(), p.tail, p.puncturing).symbols_per_pass();
        for (off, span) in spans(&p, &msgs[0], 2 * spp, 7) {
            r.handle(data_pkt(0, off, span));
        }
        assert!(!r.complete());
        assert_eq!(r.blocks_decoded(), 1);
        assert_eq!(r.n_blocks(), 2);
        let blocks = r.partial_blocks();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].as_deref(), Some(&payload[..6]));
        assert!(blocks[1].is_none());
        assert!(r.payload().is_none(), "incomplete: no full payload");
    }

    #[test]
    fn mismatched_block_bits_rejects_transfer() {
        let p = params();
        let mut r = SpinalReceiver::new(&p, ReceiverConfig::default());
        r.handle(Packet::Init {
            transfer_id: 1,
            payload_len: 4,
            n_blocks: 1,
            block_bits: 128, // receiver expects 64
            resume: vec![],
        });
        assert!(r.feedback().is_none());
    }

    #[test]
    fn staged_salvage_reseeds_resumed_blocks_on_init() {
        let p = params();
        let payload: Vec<u8> = (0u8..10).collect(); // 2 blocks of 6/4 bytes
        let mut r = SpinalReceiver::new(&p, ReceiverConfig::default());
        // Block 0 was salvaged from an earlier interrupted transfer.
        r.seed_salvage(2, vec![Some(payload[..6].to_vec()), None]);
        r.handle(Packet::Init {
            transfer_id: 2,
            payload_len: payload.len() as u32,
            n_blocks: 2,
            block_bits: 64,
            resume: vec![true, false],
        });
        assert_eq!(r.resumed_blocks(), 1);
        assert_eq!(r.blocks_decoded(), 1);
        assert_eq!(r.decode_attempts(), 0, "salvage costs no decode");
        let blocks = r.partial_blocks();
        assert_eq!(blocks[0].as_deref(), Some(&payload[..6]));
        assert!(blocks[1].is_none());
        // Feedback immediately ACKs the re-seeded block.
        match r.feedback().unwrap() {
            Packet::Feedback { decoded, .. } => assert_eq!(decoded, vec![true, false]),
            other => panic!("unexpected {other:?}"),
        }
        // Deliver block 1's symbols normally: the transfer completes.
        let msgs = FrameBuilder::new(p.n).build(&payload);
        let spp = Schedule::new(p.num_spines(), p.tail, p.puncturing).symbols_per_pass();
        for (off, span) in spans(&p, &msgs[1], 2 * spp, 7) {
            r.handle(Packet::Data {
                transfer_id: 2,
                seq: 0,
                block: 1,
                offset: off,
                payload: span,
            });
        }
        assert!(r.complete());
        assert_eq!(r.payload().unwrap(), payload);
    }

    #[test]
    fn resume_bits_without_staged_salvage_seed_nothing() {
        let p = params();
        let mut r = SpinalReceiver::new(&p, ReceiverConfig::default());
        r.handle(Packet::Init {
            transfer_id: 3,
            payload_len: 10,
            n_blocks: 2,
            block_bits: 64,
            resume: vec![true, true],
        });
        assert_eq!(r.resumed_blocks(), 0);
        assert_eq!(r.blocks_decoded(), 0);
        // Salvage staged under a different transfer id is ignored too.
        let mut r = SpinalReceiver::new(&p, ReceiverConfig::default());
        r.seed_salvage(99, vec![Some(vec![1, 2, 3]), None]);
        r.handle(Packet::Init {
            transfer_id: 3,
            payload_len: 10,
            n_blocks: 2,
            block_bits: 64,
            resume: vec![true, false],
        });
        assert_eq!(r.resumed_blocks(), 0);
    }
}
