//! The rateless sending side.
//!
//! A payload is framed into CRC-protected code blocks
//! ([`spinal_core::FrameBuilder`], §6); each block gets its own
//! [`Encoder`] whose symbol stream follows the puncturing schedule
//! (§5). The sender then plays the §7.1 loop over a datagram link:
//! every [`SpinalSender::burst`] advances each still-unacknowledged
//! block by exactly one subpass, chunked into sequence-numbered Data
//! datagrams, and feedback ([`Packet::Feedback`] ACK bitmaps, §6)
//! decides which blocks have finished. No symbol is ever retransmitted:
//! a lost datagram is simply compensated by the later symbols of the
//! rateless stream.
//!
//! An interrupted transfer can be *resumed*
//! ([`SpinalSender::resume_with`]): blocks the far side already
//! CRC-accepted are pre-acknowledged — no symbols are ever generated for
//! them — and the Init datagram carries the resume bitmap so the
//! receiver can re-seed those blocks from its salvaged bytes.

use crate::link::Datagram;
use crate::wire::{Packet, Payload};
use spinal_core::{CodeParams, Encoder, FrameBuilder, Schedule};
use std::io;

/// How observations are modulated onto the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Modulation {
    /// Complex constellation symbols (AWGN / fading links).
    Symbols,
    /// Hard bits (BSC links).
    Bits,
}

/// Sender-side knobs.
#[derive(Debug, Clone, Copy)]
pub struct SenderConfig {
    /// Maximum observations per Data datagram. Smaller datagrams lose
    /// less per drop; larger ones amortise header overhead.
    pub chunk_symbols: usize,
    /// Passes after which an unacknowledged block is abandoned (the
    /// §7.1 "give up and move on" bound).
    pub max_passes: usize,
    /// Observation kind to emit.
    pub modulation: Modulation,
    /// Feedback-silence pacing: after this many consecutive polls with
    /// no feedback for this transfer, bursts back off exponentially
    /// (with deterministic jitter) instead of firing every round — a
    /// blacked-out or one-way link stops eating the symbol budget.
    /// `0` disables backoff (burst every poll, the pre-hardening shape).
    pub backoff_after_silent: usize,
    /// Cap on the backoff exponent: the wait between bursts never
    /// exceeds `2^backoff_max_exp - 1` rounds (plus jitter).
    pub backoff_max_exp: u32,
}

impl Default for SenderConfig {
    fn default() -> Self {
        SenderConfig {
            chunk_symbols: 32,
            max_passes: 8,
            modulation: Modulation::Symbols,
            backoff_after_silent: 2,
            backoff_max_exp: 3,
        }
    }
}

/// Per-block transmit state.
struct BlockTx {
    enc: Encoder,
    /// Next entry of the shared subpass-boundary list to transmit up to.
    boundary_idx: usize,
    acked: bool,
}

/// Rateless sender for one payload transfer (see the module docs).
pub struct SpinalSender {
    cfg: SenderConfig,
    transfer_id: u64,
    payload_len: u32,
    block_bits: u32,
    /// Cumulative symbol counts ending each subpass, shared by every
    /// block (they run the same schedule).
    boundaries: Vec<usize>,
    blocks: Vec<BlockTx>,
    /// Resume bitmap announced in Init: one bit per block, true =
    /// pre-acknowledged from an earlier interrupted transfer. Empty for
    /// a fresh transfer.
    resume: Vec<bool>,
    seq: u32,
    saw_feedback: bool,
    symbols_sent: usize,
    datagrams_sent: usize,
    /// Consecutive polls whose feedback drain came up empty.
    silent_rounds: usize,
    /// Rounds left to hold fire before the next backed-off burst.
    wait_rounds: usize,
    /// Current backoff exponent (0 = not backing off).
    backoff_exp: u32,
    /// Polls that skipped their burst due to backoff.
    backoff_skips: usize,
    /// SplitMix64 state for deterministic backoff jitter.
    jitter: u64,
}

impl SpinalSender {
    /// Frame `payload` into blocks of `params.n` bits and prepare their
    /// encoders. `transfer_id` distinguishes concurrent or successive
    /// transfers on one link.
    pub fn new(params: &CodeParams, payload: &[u8], transfer_id: u64, cfg: SenderConfig) -> Self {
        Self::resume_with(params, payload, transfer_id, &[], cfg)
    }

    /// Like [`SpinalSender::new`], but resuming an interrupted transfer:
    /// every block whose `recovered` bit is true was already
    /// CRC-accepted by the far side, so it is pre-acknowledged — the
    /// sender never generates a symbol for it — and the Init datagram
    /// carries the bitmap so the receiver re-seeds those blocks from its
    /// salvaged bytes. An empty `recovered` slice means a fresh
    /// transfer; otherwise its length must match the block count the
    /// payload frames into.
    pub fn resume_with(
        params: &CodeParams,
        payload: &[u8],
        transfer_id: u64,
        recovered: &[bool],
        cfg: SenderConfig,
    ) -> Self {
        assert!(cfg.chunk_symbols >= 1, "chunk_symbols must be at least 1");
        assert!(cfg.max_passes >= 1, "max_passes must be at least 1");
        let builder = FrameBuilder::new(params.n);
        let messages = builder.build(payload);
        assert!(
            messages.len() <= u16::MAX as usize,
            "payload needs {} blocks, wire format caps at {}",
            messages.len(),
            u16::MAX
        );
        assert!(
            recovered.is_empty() || recovered.len() == messages.len(),
            "resume bitmap covers {} blocks but the payload frames into {}",
            recovered.len(),
            messages.len()
        );
        let schedule = Schedule::new(params.num_spines(), params.tail, params.puncturing);
        let boundaries = schedule.subpass_boundaries(cfg.max_passes * schedule.symbols_per_pass());
        let blocks = messages
            .iter()
            .enumerate()
            .map(|(i, msg)| BlockTx {
                enc: Encoder::new(params, msg),
                boundary_idx: 0,
                acked: recovered.get(i).copied().unwrap_or(false),
            })
            .collect();
        SpinalSender {
            cfg,
            transfer_id,
            payload_len: payload.len() as u32,
            block_bits: params.n as u32,
            boundaries,
            blocks,
            resume: recovered.to_vec(),
            seq: 0,
            saw_feedback: false,
            symbols_sent: 0,
            datagrams_sent: 0,
            silent_rounds: 0,
            wait_rounds: 0,
            backoff_exp: 0,
            backoff_skips: 0,
            jitter: transfer_id ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Drain pending feedback, then (unless done, exhausted, or backed
    /// off) advance every unacknowledged block by one subpass. The
    /// usual per-round call.
    ///
    /// Pacing: any feedback resets the backoff; a silent streak past
    /// [`SenderConfig::backoff_after_silent`] polls makes bursts
    /// exponentially sparser (deterministically jittered, counted in
    /// rounds — never the wall clock, so a seeded transfer replays
    /// exactly). A responsive link never backs off.
    pub fn poll<L: Datagram>(&mut self, link: &mut L) -> io::Result<()> {
        let heard = self.drain_feedback(link)?;
        if self.complete() || self.exhausted() {
            return Ok(());
        }
        if heard > 0 {
            self.silent_rounds = 0;
            self.wait_rounds = 0;
            self.backoff_exp = 0;
        } else {
            self.silent_rounds += 1;
        }
        let threshold = self.cfg.backoff_after_silent;
        if threshold > 0 && self.silent_rounds > threshold {
            if self.wait_rounds > 0 {
                self.wait_rounds -= 1;
                self.backoff_skips += 1;
                return Ok(()); // hold fire this round
            }
            // Fire now, then schedule the next (longer) wait: the gap
            // between bursts doubles up to the cap, ± jitter so many
            // concurrent transfers do not resynchronise.
            self.backoff_exp = (self.backoff_exp + 1).min(self.cfg.backoff_max_exp);
            let base = 1u64 << self.backoff_exp;
            let jitter = self.next_jitter() % (base / 2).max(1);
            self.wait_rounds = (base - 1 + jitter) as usize;
        }
        self.burst(link)
    }

    /// Consume every queued datagram, applying any feedback for this
    /// transfer. Other datagram kinds (or other transfers) are ignored.
    /// Returns how many feedback datagrams applied to this transfer.
    pub fn drain_feedback<L: Datagram>(&mut self, link: &mut L) -> io::Result<usize> {
        let mut heard = 0;
        while let Some(buf) = link.recv()? {
            if let Some(Packet::Feedback {
                transfer_id,
                decoded,
                ..
            }) = Packet::decode(&buf)
            {
                if transfer_id != self.transfer_id {
                    continue;
                }
                self.saw_feedback = true;
                heard += 1;
                for (block, done) in self.blocks.iter_mut().zip(decoded) {
                    if done {
                        block.acked = true;
                    }
                }
            }
        }
        Ok(heard)
    }

    /// SplitMix64 step — deterministic in `transfer_id`, so backoff
    /// jitter replays exactly for a given transfer.
    fn next_jitter(&mut self) -> u64 {
        self.jitter = self.jitter.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.jitter;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Send one burst: an Init datagram while no feedback has arrived
    /// yet (the receiver may not know this transfer exists), then the
    /// next subpass of symbols for every unacknowledged block, chunked
    /// into Data datagrams.
    pub fn burst<L: Datagram>(&mut self, link: &mut L) -> io::Result<()> {
        if !self.saw_feedback {
            let init = Packet::Init {
                transfer_id: self.transfer_id,
                payload_len: self.payload_len,
                n_blocks: self.blocks.len() as u16,
                block_bits: self.block_bits,
                resume: self.resume.clone(),
            };
            link.send(&init.encode())?;
            self.datagrams_sent += 1;
        }
        for idx in 0..self.blocks.len() {
            let block = &mut self.blocks[idx];
            if block.acked || block.boundary_idx >= self.boundaries.len() {
                continue;
            }
            let target = self.boundaries[block.boundary_idx];
            block.boundary_idx += 1;
            while self.blocks[idx].enc.emitted() < target {
                let block = &mut self.blocks[idx];
                let offset = block.enc.emitted();
                let count = (target - offset).min(self.cfg.chunk_symbols);
                let payload = match self.cfg.modulation {
                    Modulation::Symbols => Payload::Symbols(block.enc.next_symbols(count)),
                    Modulation::Bits => Payload::Bits(block.enc.next_bits(count)),
                };
                let pkt = Packet::Data {
                    transfer_id: self.transfer_id,
                    seq: self.seq,
                    block: idx as u16,
                    offset: offset as u32,
                    payload,
                };
                self.seq += 1;
                self.symbols_sent += count;
                self.datagrams_sent += 1;
                link.send(&pkt.encode())?;
            }
        }
        Ok(())
    }

    /// True once every block has been acknowledged.
    pub fn complete(&self) -> bool {
        self.blocks.iter().all(|b| b.acked)
    }

    /// True when every unacknowledged block has exhausted its pass
    /// budget: the transfer has failed (§7.1 gives up after a bounded
    /// number of passes).
    pub fn exhausted(&self) -> bool {
        !self.complete()
            && self
                .blocks
                .iter()
                .all(|b| b.acked || b.boundary_idx >= self.boundaries.len())
    }

    /// Total observations (symbols or bits) put on the wire so far.
    pub fn symbols_sent(&self) -> usize {
        self.symbols_sent
    }

    /// Total datagrams (Init + Data) put on the wire so far.
    pub fn datagrams_sent(&self) -> usize {
        self.datagrams_sent
    }

    /// Polls that skipped their burst under feedback-silence backoff.
    pub fn backoff_skips(&self) -> usize {
        self.backoff_skips
    }

    /// Number of code blocks in the transfer.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Blocks pre-acknowledged at construction by the resume bitmap
    /// (0 for a fresh transfer).
    pub fn resumed_blocks(&self) -> usize {
        self.resume.iter().filter(|&&b| b).count()
    }

    /// The deepest pass any block has reached, rounded up — the
    /// transfer's effective rate indicator.
    pub fn passes_sent(&self) -> usize {
        let spp = self
            .boundaries
            .last()
            .map(|&total| total / self.cfg.max_passes)
            .unwrap_or(1)
            .max(1);
        self.blocks
            .iter()
            .map(|b| b.enc.emitted().div_ceil(spp))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LoopbackLink;

    fn params() -> CodeParams {
        CodeParams::default().with_n(64).with_b(32)
    }

    #[test]
    fn first_burst_carries_init_then_one_subpass_per_block() {
        let p = params();
        let mut s = SpinalSender::new(&p, &[7u8; 20], 9, SenderConfig::default());
        let (mut tx, mut rx) = LoopbackLink::clean_pair(0);
        s.burst(&mut tx).unwrap();
        let first = Packet::decode(&rx.recv().unwrap().unwrap()).unwrap();
        match first {
            Packet::Init {
                transfer_id,
                payload_len,
                n_blocks,
                block_bits,
                resume,
            } => {
                assert_eq!(transfer_id, 9);
                assert_eq!(payload_len, 20);
                assert_eq!(block_bits, 64);
                // 64-bit blocks hold 48 payload bits = 6 bytes; 20 bytes
                // need 4 blocks.
                assert_eq!(n_blocks, 4);
                assert!(resume.is_empty(), "fresh transfer carries no resume");
            }
            other => panic!("expected Init first, got {other:?}"),
        }
        let mut per_block = [0usize; 4];
        let mut seqs = Vec::new();
        while let Some(buf) = rx.recv().unwrap() {
            match Packet::decode(&buf).unwrap() {
                Packet::Data {
                    seq,
                    block,
                    offset,
                    payload,
                    ..
                } => {
                    assert_eq!(offset as usize, per_block[block as usize]);
                    per_block[block as usize] += payload.len();
                    seqs.push(seq);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        let sched = Schedule::new(p.num_spines(), p.tail, p.puncturing);
        let first_subpass = sched.subpass_boundaries(sched.symbols_per_pass())[0];
        assert!(per_block.iter().all(|&n| n == first_subpass));
        assert_eq!(seqs, (0..seqs.len() as u32).collect::<Vec<_>>());
        assert_eq!(s.symbols_sent(), 4 * first_subpass);
    }

    #[test]
    fn acked_blocks_stop_transmitting() {
        let p = params();
        let mut s = SpinalSender::new(&p, &[1u8; 20], 1, SenderConfig::default());
        let (mut tx, mut rx) = LoopbackLink::clean_pair(0);
        // ACK blocks 0 and 2 by hand from the far end.
        rx.send(
            &Packet::Feedback {
                transfer_id: 1,
                received: 5,
                decoded: vec![true, false, true, false],
            }
            .encode(),
        )
        .unwrap();
        s.poll(&mut tx).unwrap();
        let mut blocks_seen = std::collections::BTreeSet::new();
        while let Some(buf) = rx.recv().unwrap() {
            if let Some(Packet::Data { block, .. }) = Packet::decode(&buf) {
                blocks_seen.insert(block);
            }
        }
        assert_eq!(blocks_seen.into_iter().collect::<Vec<_>>(), vec![1, 3]);
        assert!(!s.complete());
    }

    #[test]
    fn exhausts_after_max_passes() {
        let p = params();
        let cfg = SenderConfig {
            max_passes: 2,
            ..SenderConfig::default()
        };
        let mut s = SpinalSender::new(&p, b"abc", 3, cfg);
        let (mut tx, _keep_alive) = LoopbackLink::clean_pair(0);
        let sched = Schedule::new(p.num_spines(), p.tail, p.puncturing);
        let n_subpasses = sched.subpass_boundaries(2 * sched.symbols_per_pass()).len();
        for _ in 0..n_subpasses {
            assert!(!s.exhausted());
            s.burst(&mut tx).unwrap();
        }
        assert!(s.exhausted());
        assert!(!s.complete());
        assert_eq!(s.passes_sent(), 2);
        // Further polls send nothing new.
        let before = s.datagrams_sent();
        s.poll(&mut tx).unwrap();
        assert_eq!(s.datagrams_sent(), before);
    }

    #[test]
    fn feedback_silence_backs_off_and_feedback_resets() {
        let p = params();
        let mut s = SpinalSender::new(&p, &[9u8; 12], 7, SenderConfig::default());
        let (mut tx, mut rx) = LoopbackLink::clean_pair(0);
        // Dead feedback path: bursts must become sparse instead of
        // firing every poll.
        let mut bursts = 0;
        for _ in 0..30 {
            let before = s.datagrams_sent();
            s.poll(&mut tx).unwrap();
            if s.datagrams_sent() > before {
                bursts += 1;
            }
        }
        assert!(
            bursts < 15,
            "dead link must pace: {bursts} bursts in 30 polls"
        );
        assert!(s.backoff_skips() > 10, "skips: {}", s.backoff_skips());
        // Feedback resets the pacing immediately.
        while rx.recv().unwrap().is_some() {}
        rx.send(
            &Packet::Feedback {
                transfer_id: 7,
                received: 1,
                decoded: vec![false, false],
            }
            .encode(),
        )
        .unwrap();
        let skips_before = s.backoff_skips();
        let before = s.datagrams_sent();
        s.poll(&mut tx).unwrap();
        assert!(
            s.datagrams_sent() > before,
            "feedback must un-pause the sender"
        );
        assert_eq!(s.backoff_skips(), skips_before);
    }

    #[test]
    fn responsive_link_never_backs_off() {
        let p = params();
        let mut s = SpinalSender::new(&p, &[3u8; 6], 5, SenderConfig::default());
        let (mut tx, mut rx) = LoopbackLink::clean_pair(0);
        for _ in 0..20 {
            let before = s.datagrams_sent();
            // Feedback arrives every round: pacing must never engage.
            rx.send(
                &Packet::Feedback {
                    transfer_id: 5,
                    received: 1,
                    decoded: vec![false],
                }
                .encode(),
            )
            .unwrap();
            s.poll(&mut tx).unwrap();
            if !s.exhausted() {
                assert!(s.datagrams_sent() > before, "burst must fire");
            }
            while rx.recv().unwrap().is_some() {}
        }
        assert_eq!(s.backoff_skips(), 0);
    }

    #[test]
    fn resumed_sender_skips_recovered_blocks_and_announces_them() {
        let p = params();
        // 20 bytes → 4 blocks; blocks 0 and 2 were salvaged earlier.
        let recovered = [true, false, true, false];
        let mut s =
            SpinalSender::resume_with(&p, &[7u8; 20], 11, &recovered, SenderConfig::default());
        assert_eq!(s.resumed_blocks(), 2);
        assert!(!s.complete(), "blocks 1 and 3 still owed");
        let (mut tx, mut rx) = LoopbackLink::clean_pair(0);
        s.burst(&mut tx).unwrap();
        match Packet::decode(&rx.recv().unwrap().unwrap()).unwrap() {
            Packet::Init { resume, .. } => assert_eq!(resume, recovered.to_vec()),
            other => panic!("expected Init first, got {other:?}"),
        }
        let mut blocks_seen = std::collections::BTreeSet::new();
        while let Some(buf) = rx.recv().unwrap() {
            if let Some(Packet::Data { block, .. }) = Packet::decode(&buf) {
                blocks_seen.insert(block);
            }
        }
        assert_eq!(
            blocks_seen.into_iter().collect::<Vec<_>>(),
            vec![1, 3],
            "recovered blocks must get zero symbols"
        );
        // ACKing the outstanding blocks completes the resumed transfer.
        rx.send(
            &Packet::Feedback {
                transfer_id: 11,
                received: 2,
                decoded: vec![true, true, true, true],
            }
            .encode(),
        )
        .unwrap();
        s.drain_feedback(&mut tx).unwrap();
        assert!(s.complete());
    }

    #[test]
    fn bit_modulation_emits_bit_payloads() {
        let p = params();
        let cfg = SenderConfig {
            modulation: Modulation::Bits,
            ..SenderConfig::default()
        };
        let mut s = SpinalSender::new(&p, b"x", 4, cfg);
        let (mut tx, mut rx) = LoopbackLink::clean_pair(0);
        s.burst(&mut tx).unwrap();
        let mut saw_bits = false;
        while let Some(buf) = rx.recv().unwrap() {
            if let Some(Packet::Data { payload, .. }) = Packet::decode(&buf) {
                assert!(matches!(payload, Payload::Bits(_)));
                saw_bits = true;
            }
        }
        assert!(saw_bits);
    }
}
