//! Rateless UDP-style transport for spinal codes.
//!
//! The paper's decoder consumes a growing buffer of noisy observations;
//! this crate supplies the missing piece between that buffer and an
//! actual unreliable packet network. It implements the §6/§7.1 system
//! loop as a wire protocol:
//!
//! * [`wire`] — a framed datagram format (`Init` geometry, sequence-
//!   numbered `Data` symbol spans, cumulative `Feedback` ACK bitmaps),
//!   bounds-checked on parse.
//! * [`link`] — the dumb I/O layer: a [`Datagram`] trait with an
//!   in-memory [`LoopbackLink`] that routes symbol payloads through
//!   `spinal-channel` noise (AWGN, Rayleigh-with-CSI, BSC) plus seeded
//!   datagram loss/duplication/reordering, and a real
//!   [`std::net::UdpSocket`] binding ([`UdpLink`]).
//! * [`sender`] — CRC-framed blocks ([`spinal_core::FrameBuilder`]),
//!   one rateless encoder per block, one subpass per feedback round for
//!   every unacknowledged block; nothing is ever retransmitted.
//! * [`receiver`] — a per-block reorder buffer drained in schedule
//!   order, permanent gaps skipped after a reordering horizon, decode
//!   attempts at subpass boundaries through the one decode entry point
//!   ([`spinal_core::DecodeRequest`] with workspace + incremental table
//!   cache), CRC as the only success signal.
//! * [`transfer`] — round-loop drivers and the [`TransferReport`] cost
//!   accounting (symbols sent, passes, rounds, decode attempts).
//!
//! All intelligence lives in the sender/receiver scheduling layer; the
//! links only move buffers. That keeps every protocol decision
//! deterministic and testable offline: a seeded loopback transfer is
//! exactly reproducible, impairments and all.
//!
//! ```
//! use spinal_core::CodeParams;
//! use spinal_net::{run_loopback_transfer, Impairments, NoiseModel, TransferConfig};
//!
//! let params = CodeParams::default().with_n(64).with_b(32);
//! let payload = b"hello over a lossy link";
//! let report = run_loopback_transfer(
//!     &params,
//!     payload,
//!     NoiseModel::Awgn { snr_db: 15.0 },
//!     Impairments { loss: 0.1, dup: 0.05, reorder: 0.1, reorder_span: 3 },
//!     Impairments::clean(),
//!     42,
//!     TransferConfig::default(),
//! );
//! assert_eq!(report.payload(), Some(&payload[..]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod link;
pub mod receiver;
pub mod sender;
pub mod transfer;
pub mod wire;

pub use chaos::{BlackoutWindow, ChaosLink, FaultCounters, FaultEvent, FaultPlan, FaultTrace};
pub use link::{Datagram, LoopbackLink, NoiseModel, UdpLink};
pub use receiver::{ReceiverConfig, SpinalReceiver};
pub use sender::{Modulation, SenderConfig, SpinalSender};
pub use transfer::{
    resume_transfer, run_loopback_transfer, run_transfer, StopCause, TransferConfig, TransferError,
    TransferErrorKind, TransferOutcome, TransferReport,
};
pub use wire::{Packet, Payload, DATA_PAYLOAD_OFFSET};

// Re-exported so transfer callers can state impairments without naming
// spinal-channel directly.
pub use spinal_channel::Impairments;
