//! End-to-end transfer drivers: pump a sender/receiver pair over any
//! [`Datagram`] link until the payload lands (or a budget runs out),
//! and report what it cost.
//!
//! The round structure mirrors the paper's feedback loop: the sender
//! emits one subpass per unacknowledged block, the receiver folds in
//! whatever survived the link, attempts decodes at subpass boundaries,
//! and answers with a cumulative ACK bitmap. The number of rounds a
//! transfer needs *is* its effective rate — high-SNR links finish in
//! one pass, marginal links keep drawing symbols from the rateless
//! stream.
//!
//! Hardening (PR 9): transient I/O errors are classified and retried
//! within a budget instead of aborting; a wall-clock deadline can bound
//! the transfer; and a transfer that ends with *some* blocks decoded
//! reports [`TransferOutcome::PartialDelivery`] carrying the
//! CRC-accepted bytes, so callers salvage what arrived instead of
//! losing everything. Fatal errors return a structured
//! [`TransferError`] that still carries the partial [`TransferReport`].
//!
//! Recovery (PR 10): a degraded transfer is *resumable* —
//! [`resume_transfer`] takes the partial report, pre-acknowledges every
//! CRC-accepted block on the sender (announced in the Init resume
//! bitmap), re-seeds the receiver from the salvaged bytes, and drives
//! the same round loop so only the blocks that never decoded cost
//! symbols the second time around.

use crate::link::{Datagram, LoopbackLink, NoiseModel};
use crate::receiver::{ReceiverConfig, SpinalReceiver};
use crate::sender::{SenderConfig, SpinalSender};
use spinal_channel::Impairments;
use spinal_core::{CodeParams, FrameBuilder};
use std::io;
use std::time::{Duration, Instant};

/// Transfer-wide knobs; fans out into [`SenderConfig`] and
/// [`ReceiverConfig`].
#[derive(Debug, Clone, Copy)]
pub struct TransferConfig {
    /// Observations per Data datagram.
    pub chunk_symbols: usize,
    /// Pass budget per block, both sides.
    pub max_passes: usize,
    /// Receiver gap-skip horizon in symbols (see
    /// [`ReceiverConfig::skip_horizon`]).
    pub skip_horizon: usize,
    /// Observation kind on the wire.
    pub modulation: crate::sender::Modulation,
    /// Hard stop on sender→receiver→sender round trips; protects
    /// against a link that delivers nothing at all.
    pub max_rounds: usize,
    /// Wall-clock deadline for the whole transfer; `None` (the
    /// default) keeps the driver purely round-based and deterministic.
    pub deadline: Option<Duration>,
    /// Transient I/O errors (`Interrupted`/`WouldBlock`/`TimedOut`)
    /// tolerated before the transfer gives up with
    /// [`TransferErrorKind::RetryBudgetExhausted`].
    pub io_retry_budget: usize,
    /// Receiver reorder-buffer cap per block (see
    /// [`ReceiverConfig::max_pending_spans`]).
    pub max_pending_spans: usize,
    /// Sender backoff threshold in silent polls (see
    /// [`SenderConfig::backoff_after_silent`]); 0 disables pacing.
    pub backoff_after_silent: usize,
    /// Sender backoff exponent cap (see
    /// [`SenderConfig::backoff_max_exp`]).
    pub backoff_max_exp: u32,
}

impl Default for TransferConfig {
    fn default() -> Self {
        TransferConfig {
            chunk_symbols: 32,
            max_passes: 8,
            skip_horizon: 96,
            modulation: crate::sender::Modulation::Symbols,
            max_rounds: 64,
            deadline: None,
            io_retry_budget: 64,
            max_pending_spans: 64,
            backoff_after_silent: 2,
            backoff_max_exp: 3,
        }
    }
}

impl TransferConfig {
    fn sender(&self) -> SenderConfig {
        SenderConfig {
            chunk_symbols: self.chunk_symbols,
            max_passes: self.max_passes,
            modulation: self.modulation,
            backoff_after_silent: self.backoff_after_silent,
            backoff_max_exp: self.backoff_max_exp,
        }
    }

    fn receiver(&self) -> ReceiverConfig {
        ReceiverConfig {
            max_passes: self.max_passes,
            skip_horizon: self.skip_horizon,
            max_pending_spans: self.max_pending_spans,
        }
    }
}

/// What ended a transfer that did not deliver everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// The sender's per-block pass budget ran out.
    PassBudget,
    /// The driver's round budget ran out.
    RoundBudget,
    /// The wall-clock deadline expired.
    Deadline,
    /// I/O failed (fatally, or past the transient retry budget).
    IoError,
}

/// How a transfer terminated. Degraded endings distinguish "some blocks
/// landed" ([`TransferOutcome::PartialDelivery`], carrying the salvaged
/// bytes) from "nothing did" (the budget/deadline variants).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransferOutcome {
    /// The payload arrived intact.
    Delivered(Vec<u8>),
    /// The transfer stopped with *some* blocks CRC-accepted: the caller
    /// salvages them instead of losing everything.
    PartialDelivery {
        /// Per-block payload bytes (`None` = block never decoded),
        /// trimmed to the original datagram length.
        blocks: Vec<Option<Vec<u8>>>,
        /// Total salvaged bytes across decoded blocks.
        bytes_recovered: usize,
        /// Blocks CRC-accepted.
        blocks_decoded: usize,
        /// Blocks in the transfer.
        n_blocks: usize,
        /// What stopped the transfer short.
        stop: StopCause,
    },
    /// The sender gave up with *zero* blocks decoded: its per-block
    /// pass budget ([`TransferConfig::max_passes`]) ran out. The
    /// channel needed more symbols than the budget allowed.
    PassBudgetExhausted,
    /// The driver stopped first with zero blocks decoded:
    /// [`TransferConfig::max_rounds`] round trips elapsed with the
    /// sender still willing to send.
    RoundBudgetExhausted,
    /// The wall-clock deadline expired with zero blocks decoded.
    DeadlineExceeded,
    /// I/O failed before any block decoded; only ever seen inside a
    /// [`TransferError`]'s report.
    Aborted,
}

/// What a finished (or abandoned) transfer cost.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferReport {
    /// How the transfer terminated (delivery, degraded delivery, or
    /// which budget ran out).
    pub outcome: TransferOutcome,
    /// Observations (symbols or bits) the sender put on the wire.
    pub symbols_sent: usize,
    /// Datagrams (Init + Data) the sender put on the wire.
    pub datagrams_sent: usize,
    /// Deepest pass any block reached — the transfer's effective rate
    /// indicator.
    pub passes_sent: usize,
    /// Feedback round trips consumed.
    pub rounds: usize,
    /// Decode attempts the receiver ran.
    pub decode_attempts: usize,
    /// Transient I/O errors absorbed (retried) during the transfer.
    pub transient_io_errors: usize,
    /// Spans the receiver evicted from its capped reorder buffer.
    pub reorder_evictions: u64,
    /// Sender polls that held fire under feedback-silence backoff.
    pub backoff_skips: usize,
    /// Blocks CRC-accepted by the end of the transfer.
    pub blocks_decoded: usize,
    /// Blocks the payload was framed into (0 if Init never arrived).
    pub n_blocks: usize,
    /// Blocks re-seeded from salvage on a resumed transfer (0 for a
    /// fresh one) — these cost zero symbols and zero decode attempts.
    pub blocks_resumed: usize,
}

impl TransferReport {
    /// True when the payload arrived intact.
    pub fn delivered(&self) -> bool {
        matches!(self.outcome, TransferOutcome::Delivered(_))
    }

    /// The delivered payload, if [`TransferReport::delivered`].
    pub fn payload(&self) -> Option<&[u8]> {
        match &self.outcome {
            TransferOutcome::Delivered(p) => Some(p),
            _ => None,
        }
    }

    /// The salvaged per-block bytes of a degraded ending, if any.
    pub fn salvage(&self) -> Option<&[Option<Vec<u8>>]> {
        match &self.outcome {
            TransferOutcome::PartialDelivery { blocks, .. } => Some(blocks),
            _ => None,
        }
    }

    /// FNV-1a digest of the whole report (outcome bytes included): two
    /// reports are byte-identical iff their fingerprints match
    /// (collisions aside) — the chaos soak's determinism witness.
    pub fn fingerprint(&self) -> u64 {
        fn eat(h: &mut u64, byte: u8) {
            *h ^= u64::from(byte);
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        fn eat_u64(h: &mut u64, v: u64) {
            for b in v.to_le_bytes() {
                eat(h, b);
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in [
            self.symbols_sent as u64,
            self.datagrams_sent as u64,
            self.passes_sent as u64,
            self.rounds as u64,
            self.decode_attempts as u64,
            self.transient_io_errors as u64,
            self.reorder_evictions,
            self.backoff_skips as u64,
            self.blocks_decoded as u64,
            self.n_blocks as u64,
            self.blocks_resumed as u64,
        ] {
            eat_u64(&mut h, v);
        }
        match &self.outcome {
            TransferOutcome::Delivered(p) => {
                eat(&mut h, 1);
                for &b in p {
                    eat(&mut h, b);
                }
            }
            TransferOutcome::PartialDelivery {
                blocks,
                bytes_recovered,
                blocks_decoded,
                n_blocks,
                stop,
            } => {
                eat(&mut h, 2);
                eat_u64(&mut h, *bytes_recovered as u64);
                eat_u64(&mut h, *blocks_decoded as u64);
                eat_u64(&mut h, *n_blocks as u64);
                eat(&mut h, *stop as u8);
                for blk in blocks {
                    match blk {
                        Some(bytes) => {
                            eat(&mut h, 1);
                            for &b in bytes {
                                eat(&mut h, b);
                            }
                        }
                        None => eat(&mut h, 0),
                    }
                }
            }
            TransferOutcome::PassBudgetExhausted => eat(&mut h, 3),
            TransferOutcome::RoundBudgetExhausted => eat(&mut h, 4),
            TransferOutcome::DeadlineExceeded => eat(&mut h, 5),
            TransferOutcome::Aborted => eat(&mut h, 6),
        }
        h
    }
}

/// Why [`run_transfer`] failed. Unlike a bare [`io::Error`], the
/// partial [`TransferReport`] (with any salvaged blocks) survives.
#[derive(Debug)]
pub struct TransferError {
    /// What went wrong.
    pub kind: TransferErrorKind,
    /// The transfer accounting up to the failure, outcome included.
    /// Boxed so the `Err` variant stays pointer-sized on the happy
    /// path (the report carries salvaged block buffers).
    pub report: Box<TransferReport>,
}

/// The failure class inside a [`TransferError`].
#[derive(Debug)]
pub enum TransferErrorKind {
    /// A non-transient I/O error; retrying cannot help.
    Fatal(io::Error),
    /// More transient I/O errors than [`TransferConfig::io_retry_budget`]
    /// allows — the link is effectively down.
    RetryBudgetExhausted,
}

impl std::fmt::Display for TransferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            TransferErrorKind::Fatal(e) => write!(f, "transfer aborted on fatal I/O error: {e}"),
            TransferErrorKind::RetryBudgetExhausted => write!(
                f,
                "transfer gave up after {} transient I/O errors",
                self.report.transient_io_errors
            ),
        }
    }
}

impl std::error::Error for TransferError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            TransferErrorKind::Fatal(e) => Some(e),
            TransferErrorKind::RetryBudgetExhausted => None,
        }
    }
}

/// Errors worth retrying: the syscall (or injected fault) was a
/// hiccup, not a verdict on the link.
fn is_transient_io(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// The terminal outcome for a transfer that stopped for `stop`:
/// full delivery and degraded (some-blocks) delivery both salvage from
/// the receiver; a zero-block ending maps onto the matching variant.
fn salvage_outcome(receiver: &SpinalReceiver, stop: StopCause) -> TransferOutcome {
    if let Some(p) = receiver.payload() {
        return TransferOutcome::Delivered(p);
    }
    let blocks_decoded = receiver.blocks_decoded();
    if blocks_decoded > 0 {
        let blocks = receiver.partial_blocks();
        let bytes_recovered = blocks.iter().flatten().map(|b| b.len()).sum();
        return TransferOutcome::PartialDelivery {
            blocks,
            bytes_recovered,
            blocks_decoded,
            n_blocks: receiver.n_blocks(),
            stop,
        };
    }
    match stop {
        StopCause::PassBudget => TransferOutcome::PassBudgetExhausted,
        StopCause::RoundBudget => TransferOutcome::RoundBudgetExhausted,
        StopCause::Deadline => TransferOutcome::DeadlineExceeded,
        StopCause::IoError => TransferOutcome::Aborted,
    }
}

fn build_report(
    outcome: TransferOutcome,
    sender: &SpinalSender,
    receiver: &SpinalReceiver,
    rounds: usize,
    transient_io_errors: usize,
) -> TransferReport {
    TransferReport {
        outcome,
        symbols_sent: sender.symbols_sent(),
        datagrams_sent: sender.datagrams_sent(),
        passes_sent: sender.passes_sent(),
        rounds,
        decode_attempts: receiver.decode_attempts(),
        transient_io_errors,
        reorder_evictions: receiver.reorder_evictions(),
        backoff_skips: sender.backoff_skips(),
        blocks_decoded: receiver.blocks_decoded(),
        n_blocks: receiver.n_blocks(),
        blocks_resumed: receiver.resumed_blocks(),
    }
}

/// Drive one transfer of `payload` over an existing pair of link
/// endpoints until delivery, sender give-up, the round budget, or the
/// deadline. Transient I/O errors are absorbed up to
/// [`TransferConfig::io_retry_budget`]; anything worse returns a
/// [`TransferError`] still carrying the partial report.
pub fn run_transfer<A: Datagram, B: Datagram>(
    sender_link: &mut A,
    receiver_link: &mut B,
    params: &CodeParams,
    payload: &[u8],
    transfer_id: u64,
    cfg: TransferConfig,
) -> Result<TransferReport, TransferError> {
    let mut sender = SpinalSender::new(params, payload, transfer_id, cfg.sender());
    let mut receiver = SpinalReceiver::new(params, cfg.receiver());
    drive_transfer(&mut sender, &mut receiver, sender_link, receiver_link, cfg)
}

/// Resume a transfer that ended degraded: every block the `partial`
/// report carries as CRC-accepted salvage is pre-acknowledged on the
/// sender (and announced in the Init resume bitmap) and re-seeded on
/// the receiver, so the resumed run spends symbols only on the blocks
/// that never decoded. Composes with any link — including a fresh or
/// still-chaotic one — and with further resumes if this run also ends
/// degraded.
///
/// Robust against a mismatched `partial`: salvaged blocks are verified
/// against the actual `payload` slices, and anything that fails the
/// check (or a report from a different geometry) is simply decoded from
/// symbols like a fresh block. Resuming an already-delivered report is
/// a no-op that returns a zero-cost `Delivered` report.
pub fn resume_transfer<A: Datagram, B: Datagram>(
    sender_link: &mut A,
    receiver_link: &mut B,
    params: &CodeParams,
    payload: &[u8],
    partial: &TransferReport,
    transfer_id: u64,
    cfg: TransferConfig,
) -> Result<TransferReport, TransferError> {
    if partial.payload().is_some_and(|p| p == payload) {
        // Nothing left to send or decode.
        return Ok(TransferReport {
            outcome: TransferOutcome::Delivered(payload.to_vec()),
            symbols_sent: 0,
            datagrams_sent: 0,
            passes_sent: 0,
            rounds: 0,
            decode_attempts: 0,
            transient_io_errors: 0,
            reorder_evictions: 0,
            backoff_skips: 0,
            blocks_decoded: partial.blocks_decoded,
            n_blocks: partial.n_blocks,
            blocks_resumed: partial.n_blocks,
        });
    }
    let builder = FrameBuilder::new(params.n);
    let chunk = (builder.payload_bits() / 8).max(1);
    let n_blocks = payload.len().div_ceil(chunk).max(1);
    let salvage = partial.salvage().unwrap_or(&[]);
    // Trust nothing: a salvaged block counts only if it matches the
    // payload slice it claims to be (the report might belong to a
    // different payload, or a different framing geometry).
    let recovered: Vec<bool> = (0..n_blocks)
        .map(|i| {
            salvage.get(i).and_then(|b| b.as_deref()).is_some_and(|b| {
                let start = (i * chunk).min(payload.len());
                let end = (start + chunk).min(payload.len());
                b == &payload[start..end]
            })
        })
        .collect();
    let mut sender =
        SpinalSender::resume_with(params, payload, transfer_id, &recovered, cfg.sender());
    let mut receiver = SpinalReceiver::new(params, cfg.receiver());
    if recovered.iter().any(|&b| b) {
        receiver.seed_salvage(transfer_id, salvage.to_vec());
    }
    drive_transfer(&mut sender, &mut receiver, sender_link, receiver_link, cfg)
}

/// The shared round loop behind [`run_transfer`] and
/// [`resume_transfer`]: poll the sender, pump the receiver, stop on
/// delivery, give-up, budget, or deadline.
fn drive_transfer<A: Datagram, B: Datagram>(
    sender: &mut SpinalSender,
    receiver: &mut SpinalReceiver,
    sender_link: &mut A,
    receiver_link: &mut B,
    cfg: TransferConfig,
) -> Result<TransferReport, TransferError> {
    let started = Instant::now();
    let mut rounds = 0;
    let mut transient_io_errors = 0usize;
    let mut stop: Option<StopCause> = None;

    /// Classify one I/O step: transient errors count against the retry
    /// budget and the round continues; fatal errors (or a blown
    /// budget) abort with the partial report attached.
    macro_rules! step {
        ($e:expr) => {
            match $e {
                Ok(_) => {}
                Err(err) if is_transient_io(err.kind()) => {
                    transient_io_errors += 1;
                    if transient_io_errors > cfg.io_retry_budget {
                        let outcome = salvage_outcome(&receiver, StopCause::IoError);
                        return Err(TransferError {
                            kind: TransferErrorKind::RetryBudgetExhausted,
                            report: Box::new(build_report(
                                outcome,
                                &sender,
                                &receiver,
                                rounds,
                                transient_io_errors,
                            )),
                        });
                    }
                }
                Err(err) => {
                    let outcome = salvage_outcome(&receiver, StopCause::IoError);
                    return Err(TransferError {
                        kind: TransferErrorKind::Fatal(err),
                        report: Box::new(build_report(
                            outcome,
                            &sender,
                            &receiver,
                            rounds,
                            transient_io_errors,
                        )),
                    });
                }
            }
        };
    }

    while rounds < cfg.max_rounds {
        if cfg.deadline.is_some_and(|d| started.elapsed() >= d) {
            stop = Some(StopCause::Deadline);
            break;
        }
        rounds += 1;
        step!(sender.poll(sender_link));
        step!(receiver.pump(receiver_link));
        if sender.complete() {
            break; // final ACK observed; both sides are done
        }
        if sender.exhausted() && receiver.complete() {
            // The payload landed but the all-ones ACK keeps getting
            // lost; one more drain gives it a last chance below.
        } else if sender.exhausted() {
            // Budget gone and blocks still missing: give up. Drain any
            // in-flight feedback once more for an accurate report.
            step!(sender.drain_feedback(sender_link));
            break;
        }
    }
    // The receiver may have completed on the very last round; reflect
    // any final feedback still in flight.
    step!(receiver.pump(receiver_link));
    step!(sender.drain_feedback(sender_link));
    let stop = stop.unwrap_or(if sender.exhausted() {
        StopCause::PassBudget
    } else {
        StopCause::RoundBudget
    });
    let outcome = salvage_outcome(receiver, stop);
    Ok(build_report(
        outcome,
        sender,
        receiver,
        rounds,
        transient_io_errors,
    ))
}

/// Build a seeded loopback link with the given channel noise and
/// datagram impairments, and run one transfer across it.
#[allow(clippy::too_many_arguments)]
pub fn run_loopback_transfer(
    params: &CodeParams,
    payload: &[u8],
    noise: NoiseModel,
    data_impair: Impairments,
    feedback_impair: Impairments,
    seed: u64,
    cfg: TransferConfig,
) -> TransferReport {
    let (mut tx, mut rx) = LoopbackLink::pair(noise, data_impair, feedback_impair, seed);
    run_transfer(&mut tx, &mut rx, params, payload, seed | 1, cfg)
        .expect("loopback I/O cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosLink, FaultPlan};
    use crate::sender::Modulation;

    fn params() -> CodeParams {
        CodeParams::default().with_n(64).with_b(32)
    }

    #[test]
    fn clean_link_delivers_in_few_rounds() {
        let p = params();
        let payload: Vec<u8> = (0u8..=99).collect();
        let report = run_loopback_transfer(
            &p,
            &payload,
            NoiseModel::Clean,
            Impairments::clean(),
            Impairments::clean(),
            5,
            TransferConfig::default(),
        );
        assert_eq!(report.payload(), Some(&payload[..]));
        assert_eq!(report.outcome, TransferOutcome::Delivered(payload.clone()));
        assert_eq!(report.passes_sent, 1, "noiseless: one pass must do");
        // One subpass per round: a one-pass transfer takes at most the
        // schedule's subpass count plus the final-ACK round.
        assert!(report.rounds <= 10, "took {} rounds", report.rounds);
        assert_eq!(report.transient_io_errors, 0);
        assert_eq!(report.reorder_evictions, 0);
        assert_eq!(report.backoff_skips, 0, "responsive link never backs off");
        assert_eq!(report.blocks_decoded, report.n_blocks);
    }

    #[test]
    fn awgn_link_delivers_and_tracks_snr() {
        let p = params();
        let payload = b"the rateless stream adapts its rate to the channel";
        let run = |snr_db: f64| {
            run_loopback_transfer(
                &p,
                payload,
                NoiseModel::Awgn { snr_db },
                Impairments::clean(),
                Impairments::clean(),
                77,
                TransferConfig::default(),
            )
        };
        let good = run(20.0);
        let bad = run(4.0);
        assert_eq!(good.payload(), Some(&payload[..]));
        assert_eq!(bad.payload(), Some(&payload[..]));
        assert!(
            good.symbols_sent < bad.symbols_sent,
            "high SNR must need fewer symbols: {} vs {}",
            good.symbols_sent,
            bad.symbols_sent
        );
    }

    #[test]
    fn bsc_link_delivers_bits() {
        let p = params();
        let payload = b"hard bits";
        let cfg = TransferConfig {
            modulation: Modulation::Bits,
            max_passes: 12,
            ..TransferConfig::default()
        };
        let report = run_loopback_transfer(
            &p,
            payload,
            NoiseModel::Bsc { flip_p: 0.03 },
            Impairments::clean(),
            Impairments::clean(),
            13,
            cfg,
        );
        assert_eq!(report.payload(), Some(&payload[..]));
    }

    #[test]
    fn hopeless_channel_reports_pass_budget_exhausted() {
        // Plenty of rounds, tiny pass budget: the sender gives up —
        // "channel too noisy for the budget", not "budget too small".
        let p = params();
        let cfg = TransferConfig {
            max_passes: 2,
            max_rounds: 40,
            ..TransferConfig::default()
        };
        let report = run_loopback_transfer(
            &p,
            b"never arrives",
            NoiseModel::Awgn { snr_db: -20.0 },
            Impairments::clean(),
            Impairments::clean(),
            3,
            cfg,
        );
        assert!(!report.delivered());
        assert_eq!(report.outcome, TransferOutcome::PassBudgetExhausted);
        assert_eq!(report.payload(), None);
        assert!(report.passes_sent <= 2);
        assert!(report.rounds <= 40);
    }

    #[test]
    fn tiny_round_budget_reports_round_budget_exhausted() {
        // Generous pass budget, almost no rounds: the driver stops with
        // the sender still willing — "budget too small".
        let p = params();
        let cfg = TransferConfig {
            max_passes: 8,
            max_rounds: 2,
            ..TransferConfig::default()
        };
        let report = run_loopback_transfer(
            &p,
            b"cut short",
            NoiseModel::Awgn { snr_db: -20.0 },
            Impairments::clean(),
            Impairments::clean(),
            9,
            cfg,
        );
        assert!(!report.delivered());
        assert_eq!(report.outcome, TransferOutcome::RoundBudgetExhausted);
        assert_eq!(report.rounds, 2);
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        let p = params();
        let cfg = TransferConfig {
            deadline: Some(Duration::ZERO),
            ..TransferConfig::default()
        };
        let report = run_loopback_transfer(
            &p,
            b"no time at all",
            NoiseModel::Clean,
            Impairments::clean(),
            Impairments::clean(),
            1,
            cfg,
        );
        assert_eq!(report.outcome, TransferOutcome::DeadlineExceeded);
        assert_eq!(report.rounds, 0, "deadline fires before the first round");
        assert_eq!(report.symbols_sent, 0);
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let p = params();
        let payload = b"plenty of time";
        let cfg = TransferConfig {
            deadline: Some(Duration::from_secs(3600)),
            ..TransferConfig::default()
        };
        let report = run_loopback_transfer(
            &p,
            payload,
            NoiseModel::Clean,
            Impairments::clean(),
            Impairments::clean(),
            5,
            cfg,
        );
        assert_eq!(report.payload(), Some(&payload[..]));
    }

    #[test]
    fn mid_transfer_blackout_salvages_partial_delivery() {
        // Data path goes dark for good mid-transfer at moderate SNR:
        // blocks differ in how many symbols they need, so some decode
        // before the lights go out and must be salvaged.
        let p = params();
        let payload: Vec<u8> = (0u8..24).collect(); // 4 blocks of 6 bytes
        let (tx, mut rx) = LoopbackLink::pair(
            NoiseModel::Awgn { snr_db: 10.0 },
            Impairments::clean(),
            Impairments::clean(),
            12,
        );
        let plan = FaultPlan {
            blackouts: vec![(32, u64::MAX)],
            ..FaultPlan::clean()
        };
        let mut tx = ChaosLink::new(tx, plan, 12);
        let report = run_transfer(&mut tx, &mut rx, &p, &payload, 1, TransferConfig::default())
            .expect("loopback I/O cannot fail");
        match &report.outcome {
            TransferOutcome::PartialDelivery {
                blocks,
                bytes_recovered,
                blocks_decoded,
                n_blocks,
                ..
            } => {
                assert_eq!(*n_blocks, 4);
                assert!(*blocks_decoded >= 1 && *blocks_decoded < 4);
                let mut recovered = 0;
                for (i, blk) in blocks.iter().enumerate() {
                    if let Some(bytes) = blk {
                        assert_eq!(bytes[..], payload[i * 6..(i + 1) * 6]);
                        recovered += bytes.len();
                    }
                }
                assert_eq!(recovered, *bytes_recovered);
                assert!(recovered > 0);
            }
            other => panic!("expected PartialDelivery, got {other:?}"),
        }
        assert_eq!(report.salvage().map(|b| b.len()), Some(4));
    }

    /// A send-side wrapper recording which blocks get Data datagrams.
    struct BlockRecorder<L> {
        inner: L,
        data_blocks: std::collections::BTreeSet<u16>,
    }

    impl<L> BlockRecorder<L> {
        fn new(inner: L) -> Self {
            BlockRecorder {
                inner,
                data_blocks: std::collections::BTreeSet::new(),
            }
        }
    }

    impl<L: Datagram> Datagram for BlockRecorder<L> {
        fn send(&mut self, buf: &[u8]) -> io::Result<()> {
            if let Some(crate::wire::Packet::Data { block, .. }) = crate::wire::Packet::decode(buf)
            {
                self.data_blocks.insert(block);
            }
            self.inner.send(buf)
        }
        fn recv(&mut self) -> io::Result<Option<Vec<u8>>> {
            self.inner.recv()
        }
    }

    #[test]
    fn blackout_partial_delivery_resumes_to_bit_exact_payload() {
        // Phase 1: the data path goes dark for good mid-transfer — some
        // blocks land, some never do (the PR 9 salvage scenario).
        let p = params();
        let payload: Vec<u8> = (0u8..24).collect(); // 4 blocks of 6 bytes
        let (tx, mut rx) = LoopbackLink::pair(
            NoiseModel::Awgn { snr_db: 10.0 },
            Impairments::clean(),
            Impairments::clean(),
            12,
        );
        let plan = FaultPlan {
            blackouts: vec![(32, u64::MAX)],
            ..FaultPlan::clean()
        };
        let mut tx = ChaosLink::new(tx, plan, 12);
        let partial = run_transfer(&mut tx, &mut rx, &p, &payload, 1, TransferConfig::default())
            .expect("loopback I/O cannot fail");
        let salvaged: Vec<u16> = partial
            .salvage()
            .expect("blackout must leave a partial delivery")
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.is_some().then_some(i as u16))
            .collect();
        assert!(!salvaged.is_empty() && salvaged.len() < 4);

        // Phase 2: resume over a fresh link (route came back). The full
        // payload must arrive bit-exact, with symbols spent only on the
        // blocks the blackout swallowed.
        let (tx2, mut rx2) = LoopbackLink::pair(
            NoiseModel::Awgn { snr_db: 10.0 },
            Impairments::clean(),
            Impairments::clean(),
            77,
        );
        let mut tx2 = BlockRecorder::new(tx2);
        let report = resume_transfer(
            &mut tx2,
            &mut rx2,
            &p,
            &payload,
            &partial,
            2,
            TransferConfig::default(),
        )
        .expect("loopback I/O cannot fail");
        assert_eq!(report.payload(), Some(&payload[..]), "bit-exact delivery");
        assert_eq!(report.blocks_resumed, salvaged.len());
        assert_eq!(report.blocks_decoded, 4);
        for block in &salvaged {
            assert!(
                !tx2.data_blocks.contains(block),
                "salvaged block {block} must get zero symbols on resume"
            );
        }
        assert!(
            !tx2.data_blocks.is_empty(),
            "unrecovered blocks still need symbols"
        );
        assert!(
            report.symbols_sent < partial.symbols_sent,
            "resume must cost fewer symbols than the interrupted run \
             ({} vs {})",
            report.symbols_sent,
            partial.symbols_sent
        );
    }

    #[test]
    fn resume_composes_with_further_chaos() {
        // The resumed run itself rides a still-degraded link (burst loss
        // + duplication): the rateless stream and the resume bitmap must
        // compose, not fight.
        let p = params();
        let payload: Vec<u8> = (100u8..124).collect();
        let (tx, mut rx) = LoopbackLink::pair(
            NoiseModel::Awgn { snr_db: 10.0 },
            Impairments::clean(),
            Impairments::clean(),
            12,
        );
        let plan = FaultPlan {
            blackouts: vec![(32, u64::MAX)],
            ..FaultPlan::clean()
        };
        let mut tx = ChaosLink::new(tx, plan, 12);
        let partial = run_transfer(&mut tx, &mut rx, &p, &payload, 5, TransferConfig::default())
            .expect("loopback I/O cannot fail");
        assert!(partial.salvage().is_some());

        let (tx2, mut rx2) = LoopbackLink::pair(
            NoiseModel::Awgn { snr_db: 12.0 },
            Impairments::clean(),
            Impairments::clean(),
            41,
        );
        let plan2 = FaultPlan {
            ge: Some(spinal_channel::GeParams {
                p_good_to_bad: 0.05,
                p_bad_to_good: 0.4,
                loss_good: 0.02,
                loss_bad: 0.8,
            }),
            dup_prob: 0.05,
            dup_max: 2,
            ..FaultPlan::clean()
        };
        let mut tx2 = ChaosLink::new(tx2, plan2, 41);
        let report = resume_transfer(
            &mut tx2,
            &mut rx2,
            &p,
            &payload,
            &partial,
            6,
            TransferConfig::default(),
        )
        .expect("within budget");
        assert_eq!(report.payload(), Some(&payload[..]));
        assert!(report.blocks_resumed >= 1);
    }

    #[test]
    fn resume_of_a_delivered_report_is_a_noop() {
        let p = params();
        let payload = b"already there".to_vec();
        let report = run_loopback_transfer(
            &p,
            &payload,
            NoiseModel::Clean,
            Impairments::clean(),
            Impairments::clean(),
            5,
            TransferConfig::default(),
        );
        assert!(report.delivered());
        let (mut tx, mut rx) = LoopbackLink::clean_pair(9);
        let resumed = resume_transfer(
            &mut tx,
            &mut rx,
            &p,
            &payload,
            &report,
            7,
            TransferConfig::default(),
        )
        .expect("no I/O at all");
        assert_eq!(resumed.payload(), Some(&payload[..]));
        assert_eq!(resumed.symbols_sent, 0);
        assert_eq!(resumed.rounds, 0);
        assert_eq!(resumed.blocks_resumed, resumed.n_blocks);
    }

    #[test]
    fn resume_with_mismatched_payload_falls_back_to_fresh_transfer() {
        // A report salvaged from a *different* payload: every salvage
        // check fails, so the resume degrades gracefully into a full
        // fresh transfer that still delivers the right bytes.
        let p = params();
        let original: Vec<u8> = (0u8..24).collect();
        let (tx, mut rx) = LoopbackLink::pair(
            NoiseModel::Awgn { snr_db: 10.0 },
            Impairments::clean(),
            Impairments::clean(),
            12,
        );
        let plan = FaultPlan {
            blackouts: vec![(32, u64::MAX)],
            ..FaultPlan::clean()
        };
        let mut tx = ChaosLink::new(tx, plan, 12);
        let partial = run_transfer(
            &mut tx,
            &mut rx,
            &p,
            &original,
            1,
            TransferConfig::default(),
        )
        .expect("loopback I/O cannot fail");
        assert!(partial.salvage().is_some());

        let other: Vec<u8> = (200u8..224).collect();
        let (mut tx2, mut rx2) = LoopbackLink::clean_pair(3);
        let report = resume_transfer(
            &mut tx2,
            &mut rx2,
            &p,
            &other,
            &partial,
            9,
            TransferConfig::default(),
        )
        .expect("loopback I/O cannot fail");
        assert_eq!(report.payload(), Some(&other[..]));
        assert_eq!(report.blocks_resumed, 0, "no salvage may survive the check");
    }

    /// A link that fails fatally on every operation.
    struct BrokenLink;

    impl Datagram for BrokenLink {
        fn send(&mut self, _buf: &[u8]) -> io::Result<()> {
            Err(io::Error::new(io::ErrorKind::BrokenPipe, "wire cut"))
        }
        fn recv(&mut self) -> io::Result<Option<Vec<u8>>> {
            Err(io::Error::new(io::ErrorKind::BrokenPipe, "wire cut"))
        }
    }

    #[test]
    fn fatal_io_error_returns_structured_error_with_report() {
        let p = params();
        let (_tx, mut rx) = LoopbackLink::clean_pair(0);
        let err = run_transfer(
            &mut BrokenLink,
            &mut rx,
            &p,
            b"doomed",
            1,
            TransferConfig::default(),
        )
        .expect_err("broken link must fail");
        assert!(matches!(err.kind, TransferErrorKind::Fatal(ref e)
            if e.kind() == io::ErrorKind::BrokenPipe));
        assert_eq!(err.report.outcome, TransferOutcome::Aborted);
        assert_eq!(err.report.rounds, 1, "failed inside the first round");
        assert!(err.to_string().contains("fatal"));
    }

    #[test]
    fn transient_errors_are_retried_within_budget() {
        // Every send fails transiently: the transfer must keep trying
        // (one transient per round) until the budget gives out, then
        // return a structured error still carrying the report.
        let p = params();
        let (tx, mut rx) = LoopbackLink::clean_pair(0);
        let plan = FaultPlan {
            send_err_prob: 1.0,
            ..FaultPlan::clean()
        };
        let mut tx = ChaosLink::new(tx, plan, 3);
        let cfg = TransferConfig {
            io_retry_budget: 10,
            // Backoff would pace out the failing polls and dilute the
            // error count below the budget; keep every round trying.
            backoff_after_silent: 0,
            ..TransferConfig::default()
        };
        let err = run_transfer(&mut tx, &mut rx, &p, b"hiccups", 1, cfg)
            .expect_err("budget must give out");
        assert!(matches!(err.kind, TransferErrorKind::RetryBudgetExhausted));
        assert_eq!(err.report.transient_io_errors, 11, "budget + 1");
        assert_eq!(err.report.outcome, TransferOutcome::Aborted);
        assert!(err.to_string().contains("11 transient"));
    }

    #[test]
    fn occasional_transient_errors_do_not_stop_delivery() {
        // A mildly flaky syscall layer: the retry budget absorbs it and
        // the payload still lands.
        let p = params();
        let payload = b"flaky but fine";
        let (tx, mut rx) = LoopbackLink::pair(
            NoiseModel::Awgn { snr_db: 15.0 },
            Impairments::clean(),
            Impairments::clean(),
            21,
        );
        let plan = FaultPlan {
            send_err_prob: 0.05,
            ..FaultPlan::clean()
        };
        let mut tx = ChaosLink::new(tx, plan, 21);
        let report = run_transfer(&mut tx, &mut rx, &p, payload, 1, TransferConfig::default())
            .expect("transients within budget");
        assert_eq!(report.payload(), Some(&payload[..]));
    }

    #[test]
    fn chaos_transfer_is_deterministic_in_seed() {
        let p = params();
        let payload: Vec<u8> = (0u8..40).collect();
        let run = |seed: u64| {
            let (tx, mut rx) = LoopbackLink::pair(
                NoiseModel::Awgn { snr_db: 12.0 },
                Impairments::clean(),
                Impairments::clean(),
                seed,
            );
            let plan = FaultPlan {
                ge: Some(spinal_channel::GeParams {
                    p_good_to_bad: 0.05,
                    p_bad_to_good: 0.3,
                    loss_good: 0.02,
                    loss_bad: 0.9,
                }),
                dup_prob: 0.1,
                dup_max: 2,
                send_err_prob: 0.02,
                ..FaultPlan::clean()
            };
            let mut tx = ChaosLink::new(tx, plan, seed);
            let report = run_transfer(&mut tx, &mut rx, &p, &payload, 1, TransferConfig::default())
                .expect("within budget");
            (report.clone(), report.fingerprint(), tx.fingerprint())
        };
        let (r1, f1, t1) = run(33);
        let (r2, f2, t2) = run(33);
        assert_eq!(r1, r2, "same seed ⇒ identical report");
        assert_eq!(f1, f2);
        assert_eq!(t1, t2, "same seed ⇒ identical fault trace");
        let (_, f3, t3) = run(34);
        assert!(f1 != f3 || t1 != t3, "different seed must differ somewhere");
    }
}
