//! End-to-end transfer drivers: pump a sender/receiver pair over any
//! [`Datagram`] link until the payload lands (or the pass budget runs
//! out), and report what it cost.
//!
//! The round structure mirrors the paper's feedback loop: the sender
//! emits one subpass per unacknowledged block, the receiver folds in
//! whatever survived the link, attempts decodes at subpass boundaries,
//! and answers with a cumulative ACK bitmap. The number of rounds a
//! transfer needs *is* its effective rate — high-SNR links finish in
//! one pass, marginal links keep drawing symbols from the rateless
//! stream.

use crate::link::{Datagram, LoopbackLink, NoiseModel};
use crate::receiver::{ReceiverConfig, SpinalReceiver};
use crate::sender::{SenderConfig, SpinalSender};
use spinal_channel::Impairments;
use spinal_core::CodeParams;
use std::io;

/// Transfer-wide knobs; fans out into [`SenderConfig`] and
/// [`ReceiverConfig`].
#[derive(Debug, Clone, Copy)]
pub struct TransferConfig {
    /// Observations per Data datagram.
    pub chunk_symbols: usize,
    /// Pass budget per block, both sides.
    pub max_passes: usize,
    /// Receiver gap-skip horizon in symbols (see
    /// [`ReceiverConfig::skip_horizon`]).
    pub skip_horizon: usize,
    /// Observation kind on the wire.
    pub modulation: crate::sender::Modulation,
    /// Hard stop on sender→receiver→sender round trips; protects
    /// against a link that delivers nothing at all.
    pub max_rounds: usize,
}

impl Default for TransferConfig {
    fn default() -> Self {
        TransferConfig {
            chunk_symbols: 32,
            max_passes: 8,
            skip_horizon: 96,
            modulation: crate::sender::Modulation::Symbols,
            max_rounds: 64,
        }
    }
}

impl TransferConfig {
    fn sender(&self) -> SenderConfig {
        SenderConfig {
            chunk_symbols: self.chunk_symbols,
            max_passes: self.max_passes,
            modulation: self.modulation,
        }
    }

    fn receiver(&self) -> ReceiverConfig {
        ReceiverConfig {
            max_passes: self.max_passes,
            skip_horizon: self.skip_horizon,
        }
    }
}

/// How a transfer terminated. Distinguishes "the channel was too noisy
/// for the sender's pass budget" from "the round-trip budget was too
/// small" — the two were previously conflated in a single `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransferOutcome {
    /// The payload arrived intact.
    Delivered(Vec<u8>),
    /// The sender gave up: its per-block pass budget
    /// ([`TransferConfig::max_passes`]) ran out with blocks still
    /// undecoded. The channel needed more symbols than the budget
    /// allowed.
    PassBudgetExhausted,
    /// The driver stopped first: [`TransferConfig::max_rounds`] round
    /// trips elapsed with the sender still willing to send. The budget
    /// (or a link delivering nothing, feedback included) cut the
    /// transfer short.
    RoundBudgetExhausted,
}

/// What a finished (or abandoned) transfer cost.
#[derive(Debug, Clone)]
pub struct TransferReport {
    /// How the transfer terminated (delivery or which budget ran out).
    pub outcome: TransferOutcome,
    /// Observations (symbols or bits) the sender put on the wire.
    pub symbols_sent: usize,
    /// Datagrams (Init + Data) the sender put on the wire.
    pub datagrams_sent: usize,
    /// Deepest pass any block reached — the transfer's effective rate
    /// indicator.
    pub passes_sent: usize,
    /// Feedback round trips consumed.
    pub rounds: usize,
    /// Decode attempts the receiver ran.
    pub decode_attempts: usize,
}

impl TransferReport {
    /// True when the payload arrived intact.
    pub fn delivered(&self) -> bool {
        matches!(self.outcome, TransferOutcome::Delivered(_))
    }

    /// The delivered payload, if [`TransferReport::delivered`].
    pub fn payload(&self) -> Option<&[u8]> {
        match &self.outcome {
            TransferOutcome::Delivered(p) => Some(p),
            _ => None,
        }
    }
}

/// Drive one transfer of `payload` over an existing pair of link
/// endpoints until delivery, sender give-up, or the round budget.
pub fn run_transfer<A: Datagram, B: Datagram>(
    sender_link: &mut A,
    receiver_link: &mut B,
    params: &CodeParams,
    payload: &[u8],
    transfer_id: u64,
    cfg: TransferConfig,
) -> io::Result<TransferReport> {
    let mut sender = SpinalSender::new(params, payload, transfer_id, cfg.sender());
    let mut receiver = SpinalReceiver::new(params, cfg.receiver());
    let mut rounds = 0;
    while rounds < cfg.max_rounds {
        rounds += 1;
        sender.poll(sender_link)?;
        receiver.pump(receiver_link)?;
        if sender.complete() {
            break; // final ACK observed; both sides are done
        }
        if sender.exhausted() && receiver.complete() {
            // The payload landed but the all-ones ACK keeps getting
            // lost; one more drain gives it a last chance below.
        } else if sender.exhausted() {
            // Budget gone and blocks still missing: give up. Drain any
            // in-flight feedback once more for an accurate report.
            sender.drain_feedback(sender_link)?;
            break;
        }
    }
    // The receiver may have completed on the very last round; reflect
    // any final feedback still in flight.
    receiver.pump(receiver_link)?;
    sender.drain_feedback(sender_link)?;
    let outcome = match receiver.payload() {
        Some(p) => TransferOutcome::Delivered(p),
        None if sender.exhausted() => TransferOutcome::PassBudgetExhausted,
        None => TransferOutcome::RoundBudgetExhausted,
    };
    Ok(TransferReport {
        outcome,
        symbols_sent: sender.symbols_sent(),
        datagrams_sent: sender.datagrams_sent(),
        passes_sent: sender.passes_sent(),
        rounds,
        decode_attempts: receiver.decode_attempts(),
    })
}

/// Build a seeded loopback link with the given channel noise and
/// datagram impairments, and run one transfer across it.
#[allow(clippy::too_many_arguments)]
pub fn run_loopback_transfer(
    params: &CodeParams,
    payload: &[u8],
    noise: NoiseModel,
    data_impair: Impairments,
    feedback_impair: Impairments,
    seed: u64,
    cfg: TransferConfig,
) -> TransferReport {
    let (mut tx, mut rx) = LoopbackLink::pair(noise, data_impair, feedback_impair, seed);
    run_transfer(&mut tx, &mut rx, params, payload, seed | 1, cfg)
        .expect("loopback I/O cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sender::Modulation;

    fn params() -> CodeParams {
        CodeParams::default().with_n(64).with_b(32)
    }

    #[test]
    fn clean_link_delivers_in_few_rounds() {
        let p = params();
        let payload: Vec<u8> = (0u8..=99).collect();
        let report = run_loopback_transfer(
            &p,
            &payload,
            NoiseModel::Clean,
            Impairments::clean(),
            Impairments::clean(),
            5,
            TransferConfig::default(),
        );
        assert_eq!(report.payload(), Some(&payload[..]));
        assert_eq!(report.outcome, TransferOutcome::Delivered(payload.clone()));
        assert_eq!(report.passes_sent, 1, "noiseless: one pass must do");
        // One subpass per round: a one-pass transfer takes at most the
        // schedule's subpass count plus the final-ACK round.
        assert!(report.rounds <= 10, "took {} rounds", report.rounds);
    }

    #[test]
    fn awgn_link_delivers_and_tracks_snr() {
        let p = params();
        let payload = b"the rateless stream adapts its rate to the channel";
        let run = |snr_db: f64| {
            run_loopback_transfer(
                &p,
                payload,
                NoiseModel::Awgn { snr_db },
                Impairments::clean(),
                Impairments::clean(),
                77,
                TransferConfig::default(),
            )
        };
        let good = run(20.0);
        let bad = run(4.0);
        assert_eq!(good.payload(), Some(&payload[..]));
        assert_eq!(bad.payload(), Some(&payload[..]));
        assert!(
            good.symbols_sent < bad.symbols_sent,
            "high SNR must need fewer symbols: {} vs {}",
            good.symbols_sent,
            bad.symbols_sent
        );
    }

    #[test]
    fn bsc_link_delivers_bits() {
        let p = params();
        let payload = b"hard bits";
        let cfg = TransferConfig {
            modulation: Modulation::Bits,
            max_passes: 12,
            ..TransferConfig::default()
        };
        let report = run_loopback_transfer(
            &p,
            payload,
            NoiseModel::Bsc { flip_p: 0.03 },
            Impairments::clean(),
            Impairments::clean(),
            13,
            cfg,
        );
        assert_eq!(report.payload(), Some(&payload[..]));
    }

    #[test]
    fn hopeless_channel_reports_pass_budget_exhausted() {
        // Plenty of rounds, tiny pass budget: the sender gives up —
        // "channel too noisy for the budget", not "budget too small".
        let p = params();
        let cfg = TransferConfig {
            max_passes: 2,
            max_rounds: 40,
            ..TransferConfig::default()
        };
        let report = run_loopback_transfer(
            &p,
            b"never arrives",
            NoiseModel::Awgn { snr_db: -20.0 },
            Impairments::clean(),
            Impairments::clean(),
            3,
            cfg,
        );
        assert!(!report.delivered());
        assert_eq!(report.outcome, TransferOutcome::PassBudgetExhausted);
        assert_eq!(report.payload(), None);
        assert!(report.passes_sent <= 2);
        assert!(report.rounds <= 40);
    }

    #[test]
    fn tiny_round_budget_reports_round_budget_exhausted() {
        // Generous pass budget, almost no rounds: the driver stops with
        // the sender still willing — "budget too small".
        let p = params();
        let cfg = TransferConfig {
            max_passes: 8,
            max_rounds: 2,
            ..TransferConfig::default()
        };
        let report = run_loopback_transfer(
            &p,
            b"cut short",
            NoiseModel::Awgn { snr_db: -20.0 },
            Impairments::clean(),
            Impairments::clean(),
            9,
            cfg,
        );
        assert!(!report.delivered());
        assert_eq!(report.outcome, TransferOutcome::RoundBudgetExhausted);
        assert_eq!(report.rounds, 2);
    }
}
