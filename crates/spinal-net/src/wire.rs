//! The spinal-net wire format: three self-describing datagram types.
//!
//! Every datagram starts with a 5-byte header — a 4-byte magic
//! ([`MAGIC`], which doubles as the protocol version) and a kind byte —
//! followed by a kind-specific body, all integers little-endian:
//!
//! * **Init** — the sender's transfer announcement: transfer id, payload
//!   length, block count, code-block size, and a resume bitmap (one bit
//!   per block, true = the sender already holds this block as
//!   CRC-accepted from an earlier interrupted transfer and will send no
//!   symbols for it; empty for a fresh transfer). Retransmitted at the
//!   head of every burst until the first feedback arrives, so an
//!   arbitrary prefix of lost datagrams cannot desynchronise the pair.
//! * **Data** — one span of rateless output for one code block: a
//!   monotonically increasing per-transfer sequence number, the block
//!   index, the span's offset in the block's puncturing-schedule order,
//!   and the observations themselves (complex symbols, symbols with
//!   per-symbol CSI, or hard bits — [`Payload`]).
//! * **Feedback** — the receiver's cumulative report: one decoded bit
//!   per block (the §6 ACK bitmap) plus how many data datagrams it has
//!   processed. Idempotent by construction: feedback datagrams can be
//!   lost, duplicated, or reordered without corrupting sender state,
//!   because each one restates the entire receive state.
//!
//! Headers are assumed error-free: the paper's link layer (§6) CRCs the
//! *payload* blocks and leaves framing to the underlying PHY, and this
//! crate keeps that split — the channel shim corrupts only the
//! observation payload of Data datagrams, never the framing around it.
//! Symbols ride as `f64::to_bits` so the loopback path is bit-exact with
//! an in-process decode.

use spinal_channel::Complex;

/// Protocol magic + version. Change on any incompatible layout change.
/// (v2: `Init` grew the resume bitmap for interrupted-transfer resume.)
pub const MAGIC: u32 = 0x5350_4E32; // "SPN2"

/// Byte offset where the observation payload starts inside an encoded
/// [`Packet::Data`] datagram: magic (4) + kind (1) + transfer id (8) +
/// seq (4) + block (2) + offset (4) + payload kind (1) + count (2).
/// Everything before it is framing the wire format assumes error-free
/// (§6); fault injectors that model *payload* bit rot guard this prefix
/// (see `FaultPlan::corrupt_skip`).
pub const DATA_PAYLOAD_OFFSET: usize = 4 + 1 + 8 + 4 + 2 + 4 + 1 + 2;

const KIND_INIT: u8 = 0;
const KIND_DATA: u8 = 1;
const KIND_FEEDBACK: u8 = 2;

/// Observations carried by one [`Packet::Data`] datagram.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Complex symbols, unit channel gain assumed (AWGN).
    Symbols(Vec<Complex>),
    /// Complex symbols with exact per-symbol CSI (fading with CSI).
    SymbolsCsi(Vec<(Complex, Complex)>),
    /// Hard bits (BSC mode).
    Bits(Vec<bool>),
}

impl Payload {
    /// Number of scheduled observations in the span.
    pub fn len(&self) -> usize {
        match self {
            Payload::Symbols(v) => v.len(),
            Payload::SymbolsCsi(v) => v.len(),
            Payload::Bits(v) => v.len(),
        }
    }

    /// True when the span carries nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One spinal-net datagram (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum Packet {
    /// Transfer announcement.
    Init {
        /// Random per-transfer identifier; stale datagrams from an
        /// earlier transfer never cross-contaminate.
        transfer_id: u64,
        /// Original payload length in bytes (blocks zero-pad past it).
        payload_len: u32,
        /// Number of CRC code blocks.
        n_blocks: u16,
        /// Code-block size in bits (the spinal `n`).
        block_bits: u32,
        /// Resume bitmap: one bit per block, true = already CRC-accepted
        /// in an earlier interrupted transfer — the sender will emit no
        /// symbols for it and the receiver should re-seed it from its
        /// salvaged bytes. Empty for a fresh transfer.
        resume: Vec<bool>,
    },
    /// One span of observations for one block.
    Data {
        /// Transfer this span belongs to.
        transfer_id: u64,
        /// Per-transfer datagram sequence number, increasing in send
        /// order across all blocks.
        seq: u32,
        /// Code-block index.
        block: u16,
        /// Span offset in the block's schedule order, in observations.
        offset: u32,
        /// The observations.
        payload: Payload,
    },
    /// Cumulative receiver report.
    Feedback {
        /// Transfer being reported on.
        transfer_id: u64,
        /// Count of data datagrams processed so far (progress signal).
        received: u32,
        /// One bit per block: true = decoded and CRC-validated.
        decoded: Vec<bool>,
    },
}

/// Append a length-prefixed LSB-first packed bitmap: u16 count, then
/// `ceil(count / 8)` bytes. The shared encoding of every bitmap on the
/// wire (Feedback ACKs, Init resume, Data bit payloads).
fn pack_bits(out: &mut Vec<u8>, bits: &[bool]) {
    out.extend_from_slice(&(bits.len() as u16).to_le_bytes());
    let mut byte = 0u8;
    for (i, &b) in bits.iter().enumerate() {
        if b {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if !bits.len().is_multiple_of(8) {
        out.push(byte);
    }
}

impl Packet {
    /// Serialise to a wire buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        match self {
            Packet::Init {
                transfer_id,
                payload_len,
                n_blocks,
                block_bits,
                resume,
            } => {
                out.push(KIND_INIT);
                out.extend_from_slice(&transfer_id.to_le_bytes());
                out.extend_from_slice(&payload_len.to_le_bytes());
                out.extend_from_slice(&n_blocks.to_le_bytes());
                out.extend_from_slice(&block_bits.to_le_bytes());
                pack_bits(&mut out, resume);
            }
            Packet::Data {
                transfer_id,
                seq,
                block,
                offset,
                payload,
            } => {
                out.push(KIND_DATA);
                out.extend_from_slice(&transfer_id.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&block.to_le_bytes());
                out.extend_from_slice(&offset.to_le_bytes());
                match payload {
                    Payload::Symbols(ys) => {
                        out.push(0);
                        out.extend_from_slice(&(ys.len() as u16).to_le_bytes());
                        for y in ys {
                            out.extend_from_slice(&y.re.to_bits().to_le_bytes());
                            out.extend_from_slice(&y.im.to_bits().to_le_bytes());
                        }
                    }
                    Payload::SymbolsCsi(pairs) => {
                        out.push(1);
                        out.extend_from_slice(&(pairs.len() as u16).to_le_bytes());
                        for (y, h) in pairs {
                            out.extend_from_slice(&y.re.to_bits().to_le_bytes());
                            out.extend_from_slice(&y.im.to_bits().to_le_bytes());
                            out.extend_from_slice(&h.re.to_bits().to_le_bytes());
                            out.extend_from_slice(&h.im.to_bits().to_le_bytes());
                        }
                    }
                    Payload::Bits(bits) => {
                        out.push(2);
                        pack_bits(&mut out, bits);
                    }
                }
            }
            Packet::Feedback {
                transfer_id,
                received,
                decoded,
            } => {
                out.push(KIND_FEEDBACK);
                out.extend_from_slice(&transfer_id.to_le_bytes());
                out.extend_from_slice(&received.to_le_bytes());
                pack_bits(&mut out, decoded);
            }
        }
        out
    }

    /// Parse a wire buffer. `None` for anything malformed — wrong magic,
    /// truncated body, unknown kind — so a hostile or corrupted datagram
    /// can never panic the endpoint, only be ignored.
    pub fn decode(buf: &[u8]) -> Option<Packet> {
        let mut r = Reader { buf, at: 0 };
        if r.u32()? != MAGIC {
            return None;
        }
        let packet = match r.u8()? {
            KIND_INIT => {
                let transfer_id = r.u64()?;
                let payload_len = r.u32()?;
                let n_blocks = r.u16()?;
                let block_bits = r.u32()?;
                let n_resume = r.u16()? as usize;
                Packet::Init {
                    transfer_id,
                    payload_len,
                    n_blocks,
                    block_bits,
                    resume: r.bits(n_resume)?,
                }
            }
            KIND_DATA => {
                let transfer_id = r.u64()?;
                let seq = r.u32()?;
                let block = r.u16()?;
                let offset = r.u32()?;
                let payload_kind = r.u8()?;
                let count = r.u16()? as usize;
                let payload = match payload_kind {
                    0 => Payload::Symbols(
                        (0..count)
                            .map(|_| Some(Complex::new(r.f64()?, r.f64()?)))
                            .collect::<Option<_>>()?,
                    ),
                    1 => Payload::SymbolsCsi(
                        (0..count)
                            .map(|_| {
                                Some((
                                    Complex::new(r.f64()?, r.f64()?),
                                    Complex::new(r.f64()?, r.f64()?),
                                ))
                            })
                            .collect::<Option<_>>()?,
                    ),
                    2 => Payload::Bits(r.bits(count)?),
                    _ => return None,
                };
                Packet::Data {
                    transfer_id,
                    seq,
                    block,
                    offset,
                    payload,
                }
            }
            KIND_FEEDBACK => {
                let transfer_id = r.u64()?;
                let received = r.u32()?;
                let n = r.u16()? as usize;
                Packet::Feedback {
                    transfer_id,
                    received,
                    decoded: r.bits(n)?,
                }
            }
            _ => return None,
        };
        if r.at == buf.len() {
            Some(packet)
        } else {
            None // trailing garbage: treat as corruption
        }
    }
}

/// Little cursor over a wire buffer; every read is bounds-checked.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let s = self.buf.get(self.at..self.at + n)?;
        self.at += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn bits(&mut self, count: usize) -> Option<Vec<bool>> {
        let bytes = self.take(count.div_ceil(8))?;
        (0..count)
            .map(|i| Some(bytes.get(i / 8)? >> (i % 8) & 1 == 1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: &Packet) {
        let wire = p.encode();
        assert_eq!(Packet::decode(&wire).as_ref(), Some(p), "{p:?}");
    }

    #[test]
    fn all_kinds_roundtrip_bit_exactly() {
        roundtrip(&Packet::Init {
            transfer_id: 0xDEAD_BEEF_0123_4567,
            payload_len: 4096,
            n_blocks: 17,
            block_bits: 256,
            resume: vec![],
        });
        roundtrip(&Packet::Init {
            transfer_id: 8,
            payload_len: 54,
            n_blocks: 9,
            block_bits: 64,
            resume: vec![true, false, false, true, true, false, true, false, true],
        });
        roundtrip(&Packet::Data {
            transfer_id: 1,
            seq: 42,
            block: 3,
            offset: 960,
            payload: Payload::Symbols(vec![
                Complex::new(1.5, -2.25),
                Complex::new(f64::MIN_POSITIVE, -0.0),
            ]),
        });
        roundtrip(&Packet::Data {
            transfer_id: 2,
            seq: 7,
            block: 0,
            offset: 0,
            payload: Payload::SymbolsCsi(vec![(Complex::new(0.1, 0.2), Complex::new(-0.9, 1.1))]),
        });
        roundtrip(&Packet::Data {
            transfer_id: 3,
            seq: 9,
            block: 1,
            offset: 24,
            payload: Payload::Bits(vec![
                true, false, true, true, false, true, false, true, true,
            ]),
        });
        roundtrip(&Packet::Feedback {
            transfer_id: 4,
            received: 1000,
            decoded: vec![true, false, true],
        });
        roundtrip(&Packet::Feedback {
            transfer_id: 5,
            received: 0,
            decoded: vec![],
        });
    }

    #[test]
    fn nan_and_infinity_symbols_survive_the_wire() {
        // Degenerate observations must arrive bit-identical: the decoder
        // has a defined NaN policy and the transport must not launder
        // it. NaN != NaN, so compare re-encoded bytes, not values.
        let pkt = Packet::Data {
            transfer_id: 6,
            seq: 1,
            block: 0,
            offset: 8,
            payload: Payload::Symbols(vec![
                Complex::new(f64::NAN, f64::INFINITY),
                Complex::new(f64::NEG_INFINITY, -f64::NAN),
            ]),
        };
        let wire = pkt.encode();
        let back = Packet::decode(&wire).expect("valid frame");
        assert_eq!(back.encode(), wire);
    }

    #[test]
    fn malformed_datagrams_parse_to_none() {
        assert_eq!(Packet::decode(&[]), None);
        assert_eq!(Packet::decode(&[0; 4]), None); // wrong magic
        let mut wire = Packet::Init {
            transfer_id: 1,
            payload_len: 2,
            n_blocks: 3,
            block_bits: 64,
            resume: vec![true, true, false],
        }
        .encode();
        assert_eq!(Packet::decode(&wire[..wire.len() - 1]), None); // truncated
        wire.push(0xFF);
        assert_eq!(Packet::decode(&wire), None); // trailing garbage
        let mut bad_kind = wire.clone();
        bad_kind.pop();
        bad_kind[4] = 9;
        assert_eq!(Packet::decode(&bad_kind), None); // unknown kind
    }

    #[test]
    fn data_payload_offset_matches_the_encoder() {
        // Pin the layout constant to the actual encoder output: one
        // symbol whose first f64 has a recognizable bit pattern.
        let marker = f64::from_bits(0xA5A5_A5A5_A5A5_A5A5);
        let wire = Packet::Data {
            transfer_id: 1,
            seq: 2,
            block: 3,
            offset: 4,
            payload: Payload::Symbols(vec![Complex::new(marker, 0.0)]),
        }
        .encode();
        assert_eq!(
            &wire[DATA_PAYLOAD_OFFSET..DATA_PAYLOAD_OFFSET + 8],
            &marker.to_bits().to_le_bytes(),
            "DATA_PAYLOAD_OFFSET out of sync with the encoder"
        );
    }

    #[test]
    fn data_span_count_matches_payload_len() {
        let p = Packet::Data {
            transfer_id: 1,
            seq: 0,
            block: 0,
            offset: 0,
            payload: Payload::Bits(vec![true; 13]),
        };
        if let Packet::Data { payload, .. } = Packet::decode(&p.encode()).unwrap() {
            assert_eq!(payload.len(), 13);
            assert!(!payload.is_empty());
        } else {
            unreachable!()
        }
    }
}
