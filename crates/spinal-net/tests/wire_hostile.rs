//! Hostile-input properties for the wire codec: `Packet::decode` parses
//! attacker-controlled bytes and must *never* panic — truncations,
//! corrupted length fields, flipped bits and pure noise all have to
//! degrade to `None` or to a well-formed packet.
//!
//! When a corrupted buffer does parse, the packet must be internally
//! consistent: re-encoding it and decoding that must reproduce the same
//! bytes (bit-level identity, so NaN payloads — representable on the
//! wire — don't trip float equality).

use proptest::prelude::*;
use spinal_channel::Complex;
use spinal_net::wire::{Packet, Payload};

/// A valid packet of every kind, driven by a small parameter tuple.
fn build_packet(kind: u8, id: u64, a: u32, b: u16, n: usize, bits: bool) -> Packet {
    match kind % 3 {
        0 => Packet::Init {
            transfer_id: id,
            payload_len: a,
            n_blocks: b,
            block_bits: 32 + (a % 512),
            resume: (0..n).map(|i| i % 2 == 1).collect(),
        },
        1 => Packet::Data {
            transfer_id: id,
            seq: a,
            block: b,
            offset: a.wrapping_mul(7),
            payload: if bits {
                Payload::Bits((0..n).map(|i| i % 3 == 0).collect())
            } else {
                Payload::Symbols(
                    (0..n)
                        .map(|i| Complex::new(i as f64 * 0.25 - 1.0, 1.0 - i as f64 * 0.125))
                        .collect(),
                )
            },
        },
        _ => Packet::Feedback {
            transfer_id: id,
            received: a,
            decoded: (0..n).map(|i| i % 2 == 0).collect(),
        },
    }
}

/// Decode must either reject or yield a packet whose re-encoding is a
/// fixed point of the codec (byte-identical through another round).
fn decode_is_sane(buf: &[u8]) {
    if let Some(p) = Packet::decode(buf) {
        let e = p.encode();
        let again = Packet::decode(&e).map(|q| q.encode());
        assert_eq!(
            again,
            Some(e),
            "re-encode of a parsed packet is not a fixed point"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Pure noise: arbitrary byte soup never panics the parser.
    #[test]
    fn random_bytes_never_panic(buf in proptest::collection::vec(any::<u8>(), 0..300)) {
        decode_is_sane(&buf);
    }

    /// Every truncation of a valid datagram parses or rejects cleanly —
    /// length prefixes must never be trusted past the buffer end.
    #[test]
    fn truncations_never_panic(
        kind in any::<u8>(),
        id in any::<u64>(),
        a in any::<u32>(),
        b in any::<u16>(),
        n in 0usize..40,
        bits in any::<bool>(),
    ) {
        let wire = build_packet(kind, id, a, b, n, bits).encode();
        prop_assert!(Packet::decode(&wire).is_some(), "valid packet failed to decode");
        for cut in 0..wire.len() {
            decode_is_sane(&wire[..cut]);
        }
    }

    /// One byte overwritten anywhere — including the length fields the
    /// payload loops trust — never panics.
    #[test]
    fn length_corruption_never_panics(
        kind in any::<u8>(),
        id in any::<u64>(),
        n in 0usize..40,
        bits in any::<bool>(),
        at in any::<u16>(),
        val in any::<u8>(),
    ) {
        let mut wire = build_packet(kind, id, 0xA5A5_5A5A, 7, n, bits).encode();
        let at = at as usize % wire.len();
        wire[at] = val;
        decode_is_sane(&wire);
    }

    /// A single flipped bit anywhere in the datagram never panics.
    #[test]
    fn bit_flips_never_panic(
        kind in any::<u8>(),
        id in any::<u64>(),
        n in 0usize..40,
        bits in any::<bool>(),
        pos in any::<u32>(),
    ) {
        let mut wire = build_packet(kind, id, 3, 2, n, bits).encode();
        let bit = pos as usize % (wire.len() * 8);
        wire[bit / 8] ^= 1 << (bit % 8);
        decode_is_sane(&wire);
    }
}
