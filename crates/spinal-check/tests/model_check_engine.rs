//! Model-check harnesses driving the *real* `DecodeEngine` through
//! thousands of deterministic schedules.
//!
//! Each harness runs an engine workload as a checked body: every
//! lock/unlock and condvar wait/notify inside the engine (the vendored
//! `parking_lot` shim, built here with its `check` feature) becomes a
//! schedule point, and the session's strategy decides every handoff.
//! The assertions are the ISSUE acceptance criteria: no deadlock, no
//! lost wakeup, no lock-order inversion on *any* schedule, and
//! bit-identical `(message, cost)` output versus a serial reference on
//! *every* schedule.
//!
//! The schedule budget of the flagship test is tunable for CI smoke
//! runs via `SPINAL_CHECK_SCHEDULES` (the distinct-schedule floor
//! scales down with it); the default budget satisfies the ≥1000
//! distinct-schedule acceptance bar.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spinal_channel::{AwgnChannel, Channel};
use spinal_check::hooks::await_participants;
use spinal_check::{check_random, CheckConfig};
use spinal_core::{
    BubbleDecoder, CodeParams, DecodeEngine, DecodeRequest, Encoder, Message, RxSymbols, Schedule,
};

fn make_rx(p: &CodeParams, passes: usize, seed: u64) -> RxSymbols {
    let mut rng = StdRng::seed_from_u64(seed);
    let msg = Message::random(p.n, || rng.gen());
    let mut enc = Encoder::new(p, &msg);
    let schedule = Schedule::new(p.num_spines(), p.tail, p.puncturing);
    let mut rx = RxSymbols::new(schedule);
    let mut ch = AwgnChannel::new(9.0, seed.wrapping_add(7));
    rx.push(&ch.transmit(&enc.next_symbols(passes * p.symbols_per_pass())));
    rx
}

/// `(message, cost-bits)` — the bit-identity fingerprint of a decode.
type Fingerprint = (Message, u64);

fn fingerprint_serial(dec: &BubbleDecoder, rxs: &[RxSymbols]) -> Vec<Fingerprint> {
    rxs.iter()
        .map(|rx| {
            let r = DecodeRequest::new(dec, rx).decode();
            (r.message, r.cost.to_bits())
        })
        .collect()
}

/// Schedule budget for the flagship test, overridable so the CI smoke
/// job can run a bounded slice of the same harness.
fn schedule_budget(default: usize) -> usize {
    std::env::var("SPINAL_CHECK_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The acceptance test: submit/drain plus shutdown (engine drop joins
/// its workers at the end of every schedule) at worker counts 2 and 3,
/// ≥1000 distinct schedules each, zero violations, and every schedule's
/// drained output bit-identical to the serial decode.
#[test]
fn engine_submit_drain_shutdown_is_schedule_independent() {
    let p = CodeParams::default().with_n(32).with_b(4);
    let dec = BubbleDecoder::new(&p);
    let rxs: Vec<RxSymbols> = (0..3).map(|i| make_rx(&p, 2, 0xD0 + i)).collect();
    let serial = fingerprint_serial(&dec, &rxs);

    let budget = schedule_budget(1200);
    // With the default budget the acceptance bar is ≥1000 distinct
    // schedules; a smoke-sized budget keeps a ~75% density bar (PCT
    // schedules intentionally repeat at small thread counts).
    let distinct_floor = if budget >= 1200 { 1000 } else { budget * 3 / 4 };

    for workers in [2usize, 3] {
        let cfg = CheckConfig {
            schedules: budget,
            seed: 0xE1D0_0000 + workers as u64,
            // Main + the engine's worker pool.
            declared_threads: Some(1 + workers),
        };
        let (results, stats) = check_random(&cfg, || {
            let engine = DecodeEngine::new(workers);
            // Worker registration races spawn latency; pin it so every
            // schedule explores the same participant set.
            await_participants(1 + workers);
            for rx in &rxs {
                engine.submit(&dec, rx);
            }
            // After drain, `engine` drops: shutdown broadcast + worker
            // joins run under the model on every schedule.
            engine
                .drain()
                .into_iter()
                .map(|r| {
                    let r = r.expect("clean submit decodes");
                    (r.message, r.cost.to_bits())
                })
                .collect::<Vec<Fingerprint>>()
        });
        stats.assert_clean(&format!("engine submit/drain, {workers} workers"));
        assert_eq!(
            results.len(),
            stats.schedules,
            "some schedule failed to complete ({workers} workers)"
        );
        for (i, got) in results.iter().enumerate() {
            assert_eq!(
                got, &serial,
                "schedule {i} ({workers} workers) diverged from the serial decode"
            );
        }
        assert!(
            stats.distinct >= distinct_floor,
            "only {} distinct schedules of {} runs ({workers} workers); floor {}",
            stats.distinct,
            stats.schedules,
            distinct_floor
        );
    }
}

/// The plan-sharded parallel decode path: one block, frontier wide
/// enough (`B = 64` ≥ `MIN_PARALLEL_FRONTIER`) that the engine really
/// shards the beam across workers and merges under its locks.
#[test]
fn engine_plan_sharded_decode_is_schedule_independent() {
    let p = CodeParams::default().with_n(48).with_b(64);
    let dec = BubbleDecoder::new(&p);
    let rx = make_rx(&p, 2, 0x51AB);
    let serial = {
        let r = DecodeRequest::new(&dec, &rx).decode();
        (r.message, r.cost.to_bits())
    };

    let workers = 2usize;
    let cfg = CheckConfig {
        schedules: schedule_budget(150).min(150),
        seed: 0x51AB,
        declared_threads: Some(1 + workers),
    };
    let (results, stats) = check_random(&cfg, || {
        let engine = DecodeEngine::new(workers);
        await_participants(1 + workers);
        let r = DecodeRequest::new(&dec, &rx).engine(&engine).decode();
        (r.message, r.cost.to_bits())
    });
    stats.assert_clean("plan-sharded decode");
    assert_eq!(results.len(), stats.schedules);
    for got in &results {
        assert_eq!(got, &serial, "sharded decode diverged from serial");
    }
    assert!(
        stats.distinct > 1,
        "sharded decode never branched: {stats:?}"
    );
}

/// Batch decode: several blocks pipelined through the pool at once.
#[test]
fn engine_batch_decode_is_schedule_independent() {
    let p = CodeParams::default().with_n(32).with_b(4);
    let dec = BubbleDecoder::new(&p);
    let rxs: Vec<RxSymbols> = (0..4).map(|i| make_rx(&p, 2, 0xBA + i)).collect();
    let serial = fingerprint_serial(&dec, &rxs);

    let workers = 2usize;
    let cfg = CheckConfig {
        schedules: schedule_budget(200).min(200),
        seed: 0xBA7C,
        declared_threads: Some(1 + workers),
    };
    let (results, stats) = check_random(&cfg, || {
        let engine = DecodeEngine::new(workers);
        await_participants(1 + workers);
        engine
            .decode_batch_parallel(&dec, &rxs)
            .into_iter()
            .map(|r| (r.message, r.cost.to_bits()))
            .collect::<Vec<Fingerprint>>()
    });
    stats.assert_clean("batch decode");
    assert_eq!(results.len(), stats.schedules);
    for got in &results {
        assert_eq!(got, &serial, "batch decode diverged from serial");
    }
}

/// Shutdown robustness: submit work and drop the engine *without*
/// draining. No schedule may deadlock or leak a stuck worker — drop
/// must always shut the pool down cleanly with a job still queued or
/// in flight.
#[test]
fn engine_drop_without_drain_never_wedges() {
    let p = CodeParams::default().with_n(32).with_b(4);
    let dec = BubbleDecoder::new(&p);
    let rx = make_rx(&p, 2, 0xDEAD);

    let workers = 2usize;
    let cfg = CheckConfig {
        schedules: schedule_budget(250).min(250),
        seed: 0xD20D,
        declared_threads: Some(1 + workers),
    };
    let (results, stats) = check_random(&cfg, || {
        let engine = DecodeEngine::new(workers);
        await_participants(1 + workers);
        engine.submit(&dec, &rx);
        engine.submit(&dec, &rx);
        // Dropped with both jobs possibly still queued.
    });
    stats.assert_clean("drop without drain");
    assert_eq!(
        results.len(),
        stats.schedules,
        "a drop-without-drain schedule wedged"
    );
}

/// The submit-racing-drain hazard (ISSUE satellite): a second
/// coordinator thread submits *while* the main thread drains. Under the
/// generation-counted stream every schedule must land the raced
/// submission in exactly one generation — the one the drain closed
/// (drain waits for it) or the next (a later drain returns it). No
/// schedule may lose it, duplicate it, return results out of
/// submission order, or leave a stale completion behind.
#[test]
fn engine_submit_racing_drain_loses_nothing() {
    let p = CodeParams::default().with_n(32).with_b(4);
    let dec = BubbleDecoder::new(&p);
    let rxs: Vec<RxSymbols> = (0..3).map(|i| make_rx(&p, 2, 0xF0 + i)).collect();
    let serial = fingerprint_serial(&dec, &rxs);

    let workers = 2usize;
    let cfg = CheckConfig {
        schedules: schedule_budget(250).min(250),
        seed: 0xACE5,
        // Main + workers + the racing submitter. The racer registers at
        // its first lock, mid-race by design — declared_threads only
        // tightens stall detection once everyone has shown up.
        declared_threads: Some(1 + workers + 1),
    };
    let (results, stats) = check_random(&cfg, || {
        let engine = DecodeEngine::new(workers);
        await_participants(1 + workers);
        engine.submit(&dec, &rxs[0]);
        engine.submit(&dec, &rxs[1]);
        let first = std::thread::scope(|s| {
            let racer = s.spawn(|| engine.submit(&dec, &rxs[2]));
            let first = engine.drain();
            racer
                .join()
                .unwrap_or_else(|_| panic!("racing submitter panicked"));
            first
        });
        let second = engine.drain();
        let split = first.len();
        let got: Vec<Fingerprint> = first
            .into_iter()
            .chain(second)
            .map(|r| {
                let r = r.expect("clean submit decodes");
                (r.message, r.cost.to_bits())
            })
            .collect();
        (got, split, engine.stale_completions())
    });
    stats.assert_clean("submit racing drain");
    assert_eq!(results.len(), stats.schedules, "a racing schedule wedged");
    let mut splits = std::collections::HashSet::new();
    for (i, (got, split, stale)) in results.iter().enumerate() {
        assert_eq!(
            got, &serial,
            "schedule {i}: raced submission lost, duplicated, or reordered"
        );
        assert!(
            *split == 2 || *split == 3,
            "schedule {i}: drain returned {split} results for its generation"
        );
        assert_eq!(*stale, 0, "schedule {i}: completion leaked as stale");
        splits.insert(*split);
    }
    // The race must actually branch: some schedules drain the raced
    // submission in the first generation, others in the second.
    assert_eq!(
        splits.len(),
        2,
        "race never explored both generations: splits {splits:?}"
    );
}

/// The panic-racing-drain hazard (PR 10 tentpole): a poisoned job
/// panics on its worker *while* healthy jobs run and the coordinator
/// drains. On every schedule the panic must resolve as a structured
/// failure in its submission slot — never aborting the process, never
/// hanging the drain, never losing or duplicating the healthy results —
/// and the poisoned slot's worker must respawn exactly once with the
/// generation books balanced.
#[test]
fn engine_panic_racing_drain_resolves_structurally_on_every_schedule() {
    let p = CodeParams::default().with_n(32).with_b(4);
    let dec = BubbleDecoder::new(&p);
    let rxs: Vec<RxSymbols> = (0..2).map(|i| make_rx(&p, 2, 0xB00 + i)).collect();
    let serial = fingerprint_serial(&dec, &rxs);

    let workers = 2usize;
    let cfg = CheckConfig {
        schedules: schedule_budget(250).min(250),
        seed: 0xBAD_5EED,
        // The respawned replacement worker joins mid-schedule, so the
        // participant population is not fixed — leave the thread count
        // undeclared and let stall detection adapt.
        declared_threads: None,
    };
    let (results, stats) = check_random(&cfg, || {
        let engine = DecodeEngine::new(workers);
        await_participants(1 + workers);
        engine.submit(&dec, &rxs[0]);
        engine.submit_poison("model-checked poison");
        engine.submit(&dec, &rxs[1]);
        let drained = engine.drain();
        let oks: Vec<Fingerprint> = drained
            .iter()
            .enumerate()
            .filter_map(|(i, r)| match r {
                Ok(r) => Some((r.message.clone(), r.cost.to_bits())),
                Err(spinal_core::DecodeFailure::WorkerPanicked { payload_msg }) => {
                    assert_eq!(i, 1, "failure surfaced outside the poisoned slot");
                    assert_eq!(payload_msg, "model-checked poison");
                    None
                }
                Err(other) => panic!("poison resolved as {other:?}"),
            })
            .collect();
        let errs = drained.iter().filter(|r| r.is_err()).count();
        (
            oks,
            errs,
            engine.stats().worker_respawns,
            engine.stale_completions(),
        )
    });
    stats.assert_clean("panic racing drain");
    assert_eq!(results.len(), stats.schedules, "a panic schedule wedged");
    for (i, (oks, errs, respawns, stale)) in results.iter().enumerate() {
        assert_eq!(
            oks, &serial,
            "schedule {i}: healthy results lost, duplicated, or corrupted by the panic"
        );
        assert_eq!(*errs, 1, "schedule {i}: exactly one structured failure");
        assert_eq!(*respawns, 1, "schedule {i}: poisoned worker respawns once");
        assert_eq!(*stale, 0, "schedule {i}: completion leaked as stale");
    }
}

/// Diagnostic (ignored): dump schedule structure for tuning.
#[test]
#[ignore]
fn dump_schedule_structure() {
    let p = CodeParams::default().with_n(32).with_b(4);
    let dec = BubbleDecoder::new(&p);
    let rxs: Vec<RxSymbols> = (0..3).map(|i| make_rx(&p, 2, 0xD0 + i)).collect();
    for i in 0..12u64 {
        let strat = if i % 2 == 0 {
            spinal_check::Strategy::Random { seed: 0x1000 + i }
        } else {
            spinal_check::Strategy::Pct {
                seed: 0x1000 + i,
                depth: 3,
            }
        };
        let out = spinal_check::run_schedule(strat, Some(3), || {
            let engine = DecodeEngine::new(2);
            await_participants(3);
            for rx in &rxs {
                engine.submit(&dec, rx);
            }
            engine.drain().len()
        });
        eprintln!(
            "run {i}: hash={:016x} choices={:?} steps={} steals={} diverged={}",
            out.schedule_hash, out.choices, out.steps, out.steals, out.diverged
        );
    }
}

/// Diagnostic (ignored): distinct-hash rate per strategy.
#[test]
#[ignore]
fn dump_distinct_rates() {
    let p = CodeParams::default().with_n(32).with_b(4);
    let dec = BubbleDecoder::new(&p);
    let rxs: Vec<RxSymbols> = (0..3).map(|i| make_rx(&p, 2, 0xD0 + i)).collect();
    let body = || {
        let engine = DecodeEngine::new(2);
        await_participants(3);
        for rx in &rxs {
            engine.submit(&dec, rx);
        }
        engine.drain().len()
    };
    for (name, pct) in [("random", false), ("pct", true)] {
        let mut hashes = std::collections::HashSet::new();
        for i in 0..40u64 {
            let seed = 0x2000 + i * 0x9E37_79B9;
            let strat = if pct {
                spinal_check::Strategy::Pct { seed, depth: 3 }
            } else {
                spinal_check::Strategy::Random { seed }
            };
            let out = spinal_check::run_schedule(strat, Some(3), body);
            hashes.insert(out.schedule_hash);
        }
        eprintln!("{name}: {}/40 distinct", hashes.len());
    }
}
