//! Injected-bug self-tests: the checker must *catch* a planted ABBA
//! deadlock and a planted lost wakeup — with usable traces — and must
//! pass a correctly synchronized fixture across every schedule.

use parking_lot::{Condvar, Mutex};
use spinal_check::{
    check_exhaustive, check_random, run_schedule, CheckConfig, Strategy, ViolationKind,
};
use std::sync::Arc;

/// Classic ABBA: t1 takes A then B, t2 takes B then A. Some schedules
/// complete (one thread wins both), some deadlock; lockdep must flag
/// the inversion on every schedule that takes both first locks.
fn abba_body() {
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));
    let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
    let t1 = std::thread::spawn(move || {
        let ga = a1.lock();
        let mut gb = b1.lock();
        *gb += *ga;
    });
    // Pin registration order (t1 = tid 1, t2 = tid 2) so the schedule
    // tree is stable for the exhaustive explorer.
    spinal_check::hooks::await_participants(2);
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let t2 = std::thread::spawn(move || {
        let gb = b2.lock();
        let mut ga = a2.lock();
        *ga += *gb;
    });
    spinal_check::hooks::await_participants(3);
    let _ = spinal_check::explore::join_checked(t1);
    let _ = spinal_check::explore::join_checked(t2);
}

#[test]
fn abba_deadlock_is_caught_with_traces() {
    let cfg = CheckConfig {
        schedules: 40,
        seed: 0xABBA,
        declared_threads: Some(3), // main + 2 workers: immediate stall detection
    };
    let (_, stats) = check_random(&cfg, abba_body);
    let deadlocks: Vec<_> = stats
        .violations
        .iter()
        .filter(|v| matches!(v.kind, ViolationKind::Deadlock))
        .collect();
    assert!(
        !deadlocks.is_empty(),
        "40 randomized schedules of an ABBA pair never deadlocked; stats: {stats:?}"
    );
    assert!(
        !stats.lockdep.is_empty(),
        "lockdep missed the ABBA inversion"
    );
    // The report must be actionable: it names both blocked threads,
    // what each holds, what each waits on, and where.
    let report = format!("{}", deadlocks[0]);
    assert!(report.contains("deadlock"), "report: {report}");
    assert!(report.contains("holds m"), "no held-lock trace: {report}");
    assert!(
        report.contains("blocked on mutex"),
        "no wait state: {report}"
    );
    assert!(
        report.contains("deadlock_fixtures.rs"),
        "no source locations: {report}"
    );
    // And the lockdep cycle names both acquisition sites.
    let cycle = format!("{}", stats.lockdep[0]);
    assert!(cycle.contains("while acquiring"), "cycle: {cycle}");
}

/// ABBA restructured for exhaustive exploration: main parks on a done
/// condvar instead of yield-polling, so it never appears in the choice
/// pool and the schedule tree stays small enough to enumerate.
fn abba_cv_body() {
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));
    let done = Arc::new((Mutex::new(0usize), Condvar::new()));
    let spawn_half =
        |first: Arc<Mutex<u32>>, second: Arc<Mutex<u32>>, done: Arc<(Mutex<usize>, Condvar)>| {
            std::thread::spawn(move || {
                {
                    let gf = first.lock();
                    let mut gs = second.lock();
                    *gs += *gf;
                }
                let (dm, dcv) = &*done;
                *dm.lock() += 1;
                dcv.notify_all();
            })
        };
    let t1 = spawn_half(Arc::clone(&a), Arc::clone(&b), Arc::clone(&done));
    spinal_check::hooks::await_participants(2);
    let t2 = spawn_half(Arc::clone(&b), Arc::clone(&a), Arc::clone(&done));
    spinal_check::hooks::await_participants(3);
    let (dm, dcv) = &*done;
    let mut g = dm.lock();
    while *g < 2 {
        dcv.wait(&mut g);
    }
    drop(g);
    let _ = spinal_check::explore::join_checked(t1);
    let _ = spinal_check::explore::join_checked(t2);
}

#[test]
fn abba_exhaustive_hits_both_outcomes() {
    // Bounded exhaustive DFS over the schedule tree: both the
    // completing interleavings and the deadlocking ones must appear.
    let (results, stats) = check_exhaustive(500, Some(3), abba_cv_body);
    let deadlocks = stats
        .violations
        .iter()
        .filter(|v| matches!(v.kind, ViolationKind::Deadlock))
        .count();
    assert!(
        deadlocks > 0,
        "exhaustive exploration missed the deadlock: {stats:?}"
    );
    assert!(
        !results.is_empty(),
        "exhaustive exploration found no completing schedule"
    );
    assert!(stats.distinct > 1, "explorer failed to branch: {stats:?}");
}

/// Planted lost wakeup: the waiter checks its predicate *before*
/// taking the lock that guards it (classic TOCTOU). On schedules where
/// the setter runs between the check and the wait, the notify lands
/// before the waiter parks and the wakeup is lost.
fn lost_notify_body() {
    let pair = Arc::new((Mutex::new(false), Condvar::new()));
    let p2 = Arc::clone(&pair);
    let setter = std::thread::spawn(move || {
        let (m, cv) = &*p2;
        *m.lock() = true;
        cv.notify_one();
    });
    spinal_check::hooks::await_participants(2);
    let (m, cv) = &*pair;
    // BUG: predicate sampled in its own critical section...
    let already = { *m.lock() };
    if !already {
        let mut g = m.lock();
        // ...and never re-checked here. On schedules where the setter
        // runs completely between the two locks, the flag is already
        // true and the notify already landed on an empty wait set —
        // this wait blocks forever.
        cv.wait(&mut g);
        drop(g);
    }
    let _ = spinal_check::explore::join_checked(setter);
}

#[test]
fn lost_wakeup_is_caught() {
    let cfg = CheckConfig {
        schedules: 60,
        seed: 0x105E,
        declared_threads: Some(2),
    };
    let (_, stats) = check_random(&cfg, lost_notify_body);
    let lost: Vec<_> = stats
        .violations
        .iter()
        .filter(|v| matches!(v.kind, ViolationKind::LostWakeup))
        .collect();
    assert!(
        !lost.is_empty(),
        "60 randomized schedules never exposed the lost wakeup; stats: {stats:?}"
    );
    let report = format!("{}", lost[0]);
    assert!(report.contains("waiting on condvar"), "report: {report}");
    assert!(report.contains("cv_wait"), "no schedule trace: {report}");
}

/// The corrected version of the same handshake: predicate re-checked
/// under the lock in a wait loop. No schedule may report anything.
fn clean_handshake_body() -> u32 {
    let pair = Arc::new((Mutex::new(None::<u32>), Condvar::new()));
    let p2 = Arc::clone(&pair);
    let producer = std::thread::spawn(move || {
        let (m, cv) = &*p2;
        *m.lock() = Some(42);
        cv.notify_one();
    });
    spinal_check::hooks::await_participants(2);
    let (m, cv) = &*pair;
    let mut g = m.lock();
    while g.is_none() {
        cv.wait(&mut g);
    }
    let v = g.expect("loop exited on Some");
    drop(g);
    let _ = spinal_check::explore::join_checked(producer);
    v
}

#[test]
fn clean_fixture_is_clean_everywhere() {
    let cfg = CheckConfig {
        schedules: 80,
        seed: 0xC1EA,
        declared_threads: Some(2),
    };
    let (results, stats) = check_random(&cfg, clean_handshake_body);
    stats.assert_clean("clean handshake");
    assert_eq!(results.len(), stats.schedules);
    assert!(results.iter().all(|&v| v == 42));
    assert!(stats.distinct > 1, "handshake explored only one schedule");
}

#[test]
fn replay_reproduces_a_recorded_schedule() {
    // Determinism spot check: re-running a recorded choice sequence
    // reproduces the same schedule hash.
    let first = run_schedule(Strategy::Random { seed: 7 }, Some(2), clean_handshake_body);
    assert!(first.violation.is_none());
    let replayed = run_schedule(
        Strategy::Replay {
            forced: first.choices.iter().map(|&(i, _)| i).collect(),
        },
        Some(2),
        clean_handshake_body,
    );
    assert_eq!(first.schedule_hash, replayed.schedule_hash);
}
