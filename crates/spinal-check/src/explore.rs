//! Drivers that run a body across many schedules and aggregate what
//! the model observed.
//!
//! Two modes:
//!
//! * [`check_random`] — seeded randomized exploration: mostly
//!   uniform-random choices, seasoned with PCT-style priority
//!   scheduling (random priorities with a few random change points —
//!   empirically strong at exposing ordering bugs with few runs).
//! * [`check_exhaustive`] — bounded exhaustive DFS over the schedule
//!   choice tree, for small fixture-sized bodies. Every choice point is
//!   recorded as `(index, fanout)`; the explorer backtracks the deepest
//!   incrementable choice and replays.
//!
//! Sessions are process-global (the shim routes to *the* active
//! session); [`run_schedule`] serializes them internally, so drivers
//! — and checker tests on parallel `cargo test` threads — compose
//! safely.

use crate::report::Violation;
use crate::sched::{run_schedule, ScheduleOutcome, Strategy};
use std::collections::HashSet;
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration for [`check_random`].
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Number of schedules to run.
    pub schedules: usize,
    /// Base seed; schedule `i` derives its strategy seed from it.
    pub seed: u64,
    /// Expected participating thread count (including the caller),
    /// when known; makes deadlock detection immediate.
    pub declared_threads: Option<usize>,
}

impl CheckConfig {
    /// `schedules` runs from `seed`, thread count unknown.
    pub fn new(schedules: usize, seed: u64) -> CheckConfig {
        CheckConfig {
            schedules,
            seed,
            declared_threads: None,
        }
    }
}

/// Aggregate statistics over one exploration.
#[derive(Clone, Debug, Default)]
pub struct CheckStats {
    /// Schedules executed.
    pub schedules: usize,
    /// Distinct schedules seen (by choice-sequence hash).
    pub distinct: usize,
    /// Total grant steals (external blocking events).
    pub steals: usize,
    /// Schedules that lost determinism.
    pub diverged: usize,
    /// Fatal violations (deadlock / lost wakeup / livelock), one entry
    /// per schedule that aborted.
    pub violations: Vec<Violation>,
    /// Lock-order inversions (deduplicated per schedule by the graph,
    /// but repeated schedules may re-find the same cycle).
    pub lockdep: Vec<Violation>,
    /// Largest schedule-point count seen in one schedule.
    pub max_steps: usize,
}

impl CheckStats {
    fn absorb<R>(&mut self, out: &mut ScheduleOutcome<R>, hashes: &mut HashSet<u64>) {
        self.schedules += 1;
        if hashes.insert(out.schedule_hash) {
            self.distinct += 1;
        }
        self.steals += out.steals;
        if out.diverged {
            self.diverged += 1;
        }
        if let Some(v) = out.violation.take() {
            self.violations.push(v);
        }
        self.lockdep.append(&mut out.lockdep);
        self.max_steps = self.max_steps.max(out.steps);
    }

    /// True when no schedule produced any violation of any kind.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.lockdep.is_empty()
    }

    /// Panic with full reports if any violation was recorded.
    pub fn assert_clean(&self, what: &str) {
        if self.clean() {
            return;
        }
        let mut msg = format!(
            "{what}: {} fatal violation(s), {} lock-order inversion(s) in {} schedule(s)\n",
            self.violations.len(),
            self.lockdep.len(),
            self.schedules
        );
        for v in self.violations.iter().chain(self.lockdep.iter()).take(3) {
            msg.push_str(&format!("{v}\n"));
        }
        panic!("{msg}");
    }
}

/// Run `body` across `cfg.schedules` randomized schedules. Returns the
/// results of schedules that completed (aborted schedules contribute
/// `None` → filtered out) and the aggregate stats.
pub fn check_random<R>(cfg: &CheckConfig, mut body: impl FnMut() -> R) -> (Vec<R>, CheckStats) {
    let mut results = Vec::with_capacity(cfg.schedules);
    let mut stats = CheckStats::default();
    let mut hashes = HashSet::new();
    for i in 0..cfg.schedules {
        let seed = cfg
            .seed
            .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Mostly uniform-random with a PCT schedule every 8th run:
        // random explores broadly (distinct-schedule density is near
        // 100%), PCT concentrates on few-preemption orderings where
        // most real bugs live but collapses to few distinct schedules
        // at small thread counts — so it seasons the mix rather than
        // dominating it.
        let strategy = if i % 8 == 7 {
            Strategy::Pct { seed, depth: 3 }
        } else {
            Strategy::Random { seed }
        };
        let mut out = run_schedule(strategy, cfg.declared_threads, &mut body);
        stats.absorb(&mut out, &mut hashes);
        if let Some(r) = out.result {
            results.push(r);
        }
    }
    (results, stats)
}

/// Bounded exhaustive exploration: enumerate the schedule choice tree
/// up to `max_schedules` schedules. Suitable for small fixtures (2–3
/// threads, a handful of sync ops); the engine harnesses use
/// [`check_random`] instead.
///
/// The tree is searched breadth-first over *divergence points*: each
/// completed run enqueues every unexplored sibling of every choice it
/// made beyond its forced prefix, and the queue pops shallow prefixes
/// first. Within the budget this is a complete enumeration (every
/// node's siblings are enqueued exactly once, when the first run
/// through their parent observes them), and when the budget truncates
/// it, the schedules explored are the ones that diverge *early* —
/// where ordering bugs like ABBA live — rather than permutations of
/// the schedule tail.
pub fn check_exhaustive<R>(
    max_schedules: usize,
    declared_threads: Option<usize>,
    mut body: impl FnMut() -> R,
) -> (Vec<R>, CheckStats) {
    let mut results = Vec::new();
    let mut stats = CheckStats::default();
    let mut hashes = HashSet::new();
    let mut frontier: std::collections::VecDeque<Vec<u32>> =
        std::collections::VecDeque::from([Vec::new()]);
    while let Some(prefix) = frontier.pop_front() {
        let mut out = run_schedule(
            Strategy::Replay {
                forced: prefix.clone(),
            },
            declared_threads,
            &mut body,
        );
        let choices = std::mem::take(&mut out.choices);
        stats.absorb(&mut out, &mut hashes);
        if let Some(r) = out.result {
            results.push(r);
        }
        if stats.schedules >= max_schedules {
            break;
        }
        // Siblings below the forced prefix were enqueued by earlier
        // runs; only the newly observed choices contribute here. (On
        // divergence the observed choices are still a valid cursor —
        // the tree shifted under replay; the search stays sound,
        // merely redundant.)
        for d in prefix.len()..choices.len() {
            let (idx, fanout) = choices[d];
            for alt in 0..fanout {
                if alt == idx {
                    continue;
                }
                let mut p: Vec<u32> = choices[..d].iter().map(|&(i, _)| i).collect();
                p.push(alt);
                frontier.push_back(p);
            }
        }
    }
    (results, stats)
}

/// Join a thread from inside a checked body without stealing the
/// grant: spins on [`crate::hooks::yield_point`] until the thread
/// finishes, so the model always knows the joiner is merely waiting.
/// Outside a session this is a plain `join`.
///
/// Use this in *fixtures*; code under test (e.g. `DecodeEngine::drop`)
/// keeps its real `join` and is covered by the steal timeout instead.
pub fn join_checked<T>(handle: JoinHandle<T>) -> std::thread::Result<T> {
    while !handle.is_finished() {
        crate::hooks::yield_point();
        if !crate::hooks::enabled() {
            break;
        }
        // Off-model breather: only reached while no other participant
        // is runnable, so this wall-clock pause blocks nobody.
        std::thread::sleep(Duration::from_micros(50));
    }
    handle.join()
}
