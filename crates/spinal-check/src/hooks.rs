//! The hook surface the instrumented `parking_lot` shim calls into.
//!
//! Dormant cost is one relaxed atomic load per sync operation: the
//! shim's `check` feature may be enabled workspace-wide (Cargo feature
//! unification under `cargo test --workspace` does exactly that) and
//! must not perturb tests that never start a session.
//!
//! Participation is automatic. The first hook a thread executes while
//! a session is active registers the thread and stores a thread-local
//! guard; the guard's `Drop` (run by TLS destruction at thread exit)
//! reports the exit to the model. This is what lets the checker follow
//! the `DecodeEngine`'s internally spawned workers without the engine
//! knowing it is being checked.

use crate::sched::SessionInner;
use std::cell::RefCell;
use std::panic::Location;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Global toggle; false means every hook is a no-op after one load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The active session, when one exists.
static SESSION: Mutex<Option<Arc<SessionInner>>> = Mutex::new(None);

/// Allocator for model object ids (mutexes and condvars share the
/// space). Starts at 1 so 0 can mean "unassigned" in the shim's lazily
/// initialized atomics.
static NEXT_OBJ_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh model id for a mutex or condvar.
pub fn fresh_obj_id() -> u64 {
    NEXT_OBJ_ID.fetch_add(1, Ordering::Relaxed)
}

/// Is a check session currently active? The shim calls this before
/// anything else; when false it takes its plain std-backed paths.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

struct Participant {
    sess: Arc<SessionInner>,
    tid: usize,
}

impl Drop for Participant {
    fn drop(&mut self) {
        self.sess.thread_exited(self.tid);
    }
}

thread_local! {
    static PART: RefCell<Option<Participant>> = const { RefCell::new(None) };
}

/// Resolve this thread's participation in the active session,
/// registering it on first contact. `None` when no session is active,
/// the session is shutting down, or this thread's TLS is already being
/// destroyed.
fn participant() -> Option<(Arc<SessionInner>, usize)> {
    if !enabled() {
        return None;
    }
    PART.try_with(|slot| {
        let mut slot = slot.borrow_mut();
        if let Some(p) = slot.as_ref() {
            if !p.sess.is_closed() {
                return Some((p.sess.clone(), p.tid));
            }
            *slot = None; // stale guard from a finished session
        }
        let sess = SESSION
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()?;
        if sess.is_closed() {
            return None;
        }
        let name = std::thread::current()
            .name()
            .unwrap_or("<unnamed>")
            .to_string();
        let tid = sess.register_thread(name);
        *slot = Some(Participant {
            sess: sess.clone(),
            tid,
        });
        Some((sess, tid))
    })
    .ok()
    .flatten()
}

// ---------------------------------------------------------------------
// Shim-facing hooks
// ---------------------------------------------------------------------

/// A mutex `lock()` is about to happen. Blocks in the model until the
/// model grants the lock; afterwards the real lock is uncontended.
#[track_caller]
pub fn mutex_lock(id: u64) {
    let loc = Location::caller();
    if let Some((s, tid)) = participant() {
        s.lock_acquire(tid, id, loc);
    }
}

/// A mutex guard was dropped (the real lock is already released).
pub fn mutex_unlock(id: u64) {
    if let Some((s, tid)) = participant() {
        s.lock_release(tid, id);
    }
}

/// A `try_lock` is about to happen. `None`: no session — the caller
/// should use the real `try_lock`. `Some(granted)`: the model decided;
/// on `true` the real lock is guaranteed uncontended.
#[track_caller]
pub fn mutex_try_lock(id: u64) -> Option<bool> {
    let loc = Location::caller();
    let (s, tid) = participant()?;
    Some(s.lock_try_acquire(tid, id, loc))
}

/// A condvar wait is about to happen with `lock` held. Returns `true`
/// when the model handled the wait — the caller must then *skip* the
/// real condvar wait and simply re-take the real mutex (uncontended,
/// because the model re-acquired the lock before returning).
#[track_caller]
pub fn condvar_wait(cv: u64, lock: u64) -> bool {
    let loc = Location::caller();
    match participant() {
        Some((s, tid)) => {
            s.condvar_wait(tid, cv, lock, loc);
            true
        }
        None => false,
    }
}

/// `notify_one` on a condvar. Which parked waiter wakes is a schedule
/// choice made by the session's strategy.
pub fn condvar_notify_one(cv: u64) {
    if let Some((s, tid)) = participant() {
        s.condvar_notify(tid, cv, false);
    }
}

/// `notify_all` on a condvar.
pub fn condvar_notify_all(cv: u64) {
    if let Some((s, tid)) = participant() {
        s.condvar_notify(tid, cv, true);
    }
}

/// A polite schedule point: hand execution to any other runnable
/// thread; keep it only when nobody else can run. A thread spinning on
/// this is treated as blocked by stall detection, which is what makes
/// [`crate::explore::join_checked`] safe inside checked bodies.
#[track_caller]
pub fn yield_point() {
    if let Some((s, tid)) = participant() {
        s.yield_now(tid);
    }
}

// ---------------------------------------------------------------------
// Session lifecycle (called by sched::run_schedule)
// ---------------------------------------------------------------------

/// Install `sess` as the active session and register the calling
/// thread as its first participant (it starts holding the grant).
pub(crate) fn install_session(sess: &Arc<SessionInner>) {
    *SESSION.lock().unwrap_or_else(PoisonError::into_inner) = Some(sess.clone());
    ENABLED.store(true, Ordering::Release);
    let tid = sess.register_thread(
        std::thread::current()
            .name()
            .unwrap_or("<main>")
            .to_string(),
    );
    PART.with(|slot| {
        *slot.borrow_mut() = Some(Participant {
            sess: sess.clone(),
            tid,
        });
    });
}

/// Retire the calling thread's participation (the body returned or
/// unwound); drops the guard, which reports the exit.
pub(crate) fn retire_main() {
    let _ = PART.try_with(|slot| slot.borrow_mut().take());
}

/// Remove `sess` from the global slot if it is still installed.
pub(crate) fn uninstall_session(sess: &Arc<SessionInner>) {
    let mut slot = SESSION.lock().unwrap_or_else(PoisonError::into_inner);
    if slot.as_ref().is_some_and(|s| Arc::ptr_eq(s, sess)) {
        *slot = None;
        ENABLED.store(false, Ordering::Release);
    }
}

/// Block (off-model, wall-clock) until the active session has at least
/// `n` registered participants, the caller included. No-op when no
/// session is active.
///
/// Thread *registration* happens at a thread's first hook, which races
/// real spawn latency — without a barrier, a fast parent often runs
/// past the interesting window before its children exist in the model,
/// collapsing the schedule space. Call this after spawning to make the
/// children's presence (and their tid order, when called between
/// spawns) deterministic.
pub fn await_participants(n: usize) {
    loop {
        let Some((s, _)) = participant() else { return };
        if s.participant_count() >= n {
            return;
        }
        std::thread::sleep(std::time::Duration::from_micros(50));
    }
}
