//! A loom-style deterministic-schedule concurrency checker for the
//! workspace's long-lived thread pools.
//!
//! The build container exposes one core, so the engine's concurrency
//! contract — no deadlocks, no lost wakeups, bit-identical output at
//! every thread count — is never exercised by the interleavings the
//! test host happens to produce. This crate replaces the OS scheduler
//! with a *model* scheduler for the duration of a check session:
//!
//! * The vendored `parking_lot` shim, built with its `check` feature,
//!   routes every `Mutex` lock/unlock and `Condvar` wait/notify through
//!   [`hooks`]. When a session is active, each such operation becomes a
//!   **schedule point**: exactly one participating thread runs at a
//!   time, and at every schedule point the session's [`Strategy`]
//!   chooses which thread runs next. When no session is active the
//!   hooks are a single relaxed atomic load — the shim behaves exactly
//!   like the plain std-backed version.
//! * [`sched`] holds the model: per-thread run states, lock ownership
//!   and wait queues, condvar wait sets, an acquisition-ordered
//!   lockdep graph ([`lockdep`]) with cycle detection, and a bounded
//!   event trace. Deadlocks (every live thread model-blocked) and lost
//!   wakeups (every live thread parked in a condvar wait set with no
//!   notify in flight) are detected and reported as [`Violation`]s
//!   carrying full per-thread acquisition traces ([`report`]).
//! * [`explore`] drives bodies across many schedules: seeded uniform
//!   random preemption, PCT-style priority scheduling with random
//!   change points, and bounded exhaustive enumeration of the schedule
//!   tree for small thread counts.
//!
//! Threads participate automatically: the first hook a thread executes
//! while a session is active registers it, and a thread-local guard
//! reports its exit, so the `DecodeEngine`'s internally-spawned workers
//! are captured without any engine changes. Code the model cannot see
//! (e.g. `JoinHandle::join` inside `DecodeEngine::drop`) is handled by
//! a currency-steal timeout: a schedule that blocks outside the model
//! loses determinism for its remaining choices (counted in
//! [`ScheduleOutcome::diverged`]) but never hangs the checker.
//!
//! The checker asserts *outcomes* per schedule — the harnesses in
//! `tests/` run the engine's submit/drain, plan-sharded decode, batch
//! and shutdown paths across thousands of schedules and require
//! bit-identical `(message, cost)` on every one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod hooks;
pub mod lockdep;
pub mod report;
pub mod sched;

pub use explore::{check_exhaustive, check_random, CheckConfig, CheckStats};
pub use report::{Event, Op, ThreadReport, Violation, ViolationKind};
pub use sched::{run_schedule, ScheduleOutcome, Strategy};
