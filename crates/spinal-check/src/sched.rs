//! The deterministic model scheduler.
//!
//! One **session** checks one execution ("schedule") of a body closure.
//! Every thread that executes a shim sync operation while the session
//! is active becomes a participant; exactly one participant holds the
//! execution **grant** at a time, and the grant only moves at schedule
//! points (the shim hooks). The session's [`Strategy`] makes every
//! choice — which thread runs next, which condvar waiter a
//! `notify_one` wakes — so a `(strategy, body)` pair replays the same
//! interleaving, modulo code the model cannot see (documented
//! divergences, e.g. `JoinHandle::join`).
//!
//! The model mirrors the sync state: lock ownership, lock wait queues
//! (implicit in thread run states), condvar wait sets, held-lock
//! stacks with acquisition sites, and the lockdep graph. Blocking
//! never uses the real primitives' blocking paths — a model-blocked
//! thread parks on the session's own condvar until the model wakes it
//! — so deadlocks and lost wakeups are *states of the model*, detected
//! and reported rather than hung on.

use crate::hooks;
use crate::lockdep::LockGraph;
use crate::report::{Event, Op, ThreadReport, Violation, ViolationKind};
use std::collections::{HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe, Location};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// How long a granted thread may stay silent before the grant is
/// stolen (it is assumed blocked outside the model, e.g. in `join`).
const STEAL_TIMEOUT: Duration = Duration::from_millis(5);
/// How long a fully-blocked model must persist before it is declared a
/// deadlock when the expected thread count is unknown (grace for
/// threads that are spawned but have not yet reached their first
/// hook).
const STALL_GRACE: Duration = Duration::from_millis(150);
/// Schedule-point budget per schedule; exceeding it is a livelock.
const MAX_STEPS: usize = 200_000;
/// Events kept in the bounded trace.
const TRACE_CAP: usize = 128;

/// Scheduling strategy for one schedule.
#[derive(Clone, Debug)]
pub enum Strategy {
    /// Uniform random choice at every schedule point, from `seed`.
    Random {
        /// Seed for the splitmix64 choice stream.
        seed: u64,
    },
    /// PCT-style priority scheduling: threads get random priorities,
    /// the highest-priority runnable thread always runs, and at
    /// `depth` random schedule points the running thread's priority
    /// drops below everyone else's.
    Pct {
        /// Seed for priorities and change points.
        seed: u64,
        /// Number of priority change points.
        depth: usize,
    },
    /// Replay a recorded choice-index prefix; beyond it, always take
    /// choice 0. Used by the bounded exhaustive explorer.
    Replay {
        /// Choice indices to force, in schedule order.
        forced: Vec<u32>,
    },
}

/// Everything observed about one completed schedule.
#[derive(Debug)]
pub struct ScheduleOutcome<R> {
    /// The body's return value; `None` if the schedule was aborted by
    /// a violation.
    pub result: Option<R>,
    /// The fatal violation (deadlock / lost wakeup / livelock), if any.
    pub violation: Option<Violation>,
    /// Lock-order inversions observed (non-fatal; execution continued).
    pub lockdep: Vec<Violation>,
    /// FNV-1a hash of the choice sequence — two schedules with equal
    /// hashes took the same branches.
    pub schedule_hash: u64,
    /// The choice sequence as `(chosen index, fanout)` pairs.
    pub choices: Vec<(u32, u32)>,
    /// Schedule points executed.
    pub steps: usize,
    /// Grant steals (external blocking the model could not see).
    pub steals: usize,
    /// True when determinism was lost (a steal happened, a replay
    /// prefix mismatched, or an unscheduled self-grant raced).
    pub diverged: bool,
}

// ---------------------------------------------------------------------
// Model state
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum RunSt {
    /// May be granted execution.
    Ready,
    /// Waiting for a mutex.
    BlockedLock {
        lock: u64,
        loc: &'static Location<'static>,
    },
    /// Parked in a condvar wait set (paired mutex released).
    BlockedCv {
        cv: u64,
        loc: &'static Location<'static>,
    },
    /// Exited (thread-local guard ran).
    Finished,
}

#[derive(Debug)]
struct Th {
    name: String,
    run: RunSt,
    /// Locks held, innermost last, with acquisition sites.
    held: Vec<(u64, &'static Location<'static>)>,
    /// Granted but silent past the steal timeout: deprioritized until
    /// its next hook proves it alive.
    suspect: bool,
    /// Currently spinning in [`hooks::yield_point`] — "making no
    /// progress until someone else does", which stall detection treats
    /// as blocked.
    yielding: bool,
}

#[derive(Debug, Default)]
struct LockSt {
    owner: Option<usize>,
}

struct StratState {
    kind: Strategy,
    rng: u64,
    /// Per-thread PCT priorities (indexed by tid).
    priorities: Vec<u64>,
    /// Remaining PCT change points (schedule-point indices).
    change_points: Vec<usize>,
    /// Monotonically decreasing floor for PCT demotions.
    low_water: u64,
    /// Next forced-choice index for replay.
    replay_at: usize,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StratState {
    fn new(kind: Strategy) -> StratState {
        let mut rng = match &kind {
            Strategy::Random { seed } => 0x5350_u64 ^ seed.rotate_left(17),
            Strategy::Pct { seed, .. } => 0x5043_u64 ^ seed.rotate_left(17),
            Strategy::Replay { .. } => 0,
        };
        let change_points = match &kind {
            Strategy::Pct { depth, .. } => {
                let mut pts: Vec<usize> = (0..*depth)
                    .map(|_| (splitmix(&mut rng) % 4096) as usize)
                    .collect();
                pts.sort_unstable();
                pts
            }
            _ => Vec::new(),
        };
        StratState {
            kind,
            rng,
            priorities: Vec::new(),
            change_points,
            low_water: u64::MAX / 2,
            replay_at: 0,
        }
    }

    fn on_register(&mut self) {
        let p = splitmix(&mut self.rng) | 1;
        self.priorities.push(p % (u64::MAX / 2) + u64::MAX / 2);
    }

    /// Choose one of `options` (sorted thread ids). Records nothing —
    /// the caller logs the choice. Returns the index into `options`.
    fn pick(&mut self, options: &[usize], step: usize, diverged: &mut bool) -> usize {
        debug_assert!(!options.is_empty());
        if options.len() == 1 {
            return 0;
        }
        match &self.kind {
            Strategy::Random { .. } => (splitmix(&mut self.rng) % options.len() as u64) as usize,
            Strategy::Pct { .. } => {
                let i = options
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &tid)| self.priorities[tid])
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                if self.change_points.first().is_some_and(|&p| p <= step) {
                    self.change_points.remove(0);
                    self.low_water -= 1;
                    self.priorities[options[i]] = self.low_water;
                }
                i
            }
            Strategy::Replay { forced } => {
                let i = match forced.get(self.replay_at) {
                    Some(&f) if (f as usize) < options.len() => f as usize,
                    Some(_) => {
                        // Recorded fanout no longer matches: the tree
                        // shifted under us (external blocking).
                        *diverged = true;
                        0
                    }
                    None => 0,
                };
                self.replay_at += 1;
                i
            }
        }
    }
}

struct Model {
    threads: Vec<Th>,
    /// The thread currently holding the execution grant.
    current: Option<usize>,
    locks: HashMap<u64, LockSt>,
    graph: LockGraph,
    strat: StratState,
    choices: Vec<(u32, u32)>,
    trace: VecDeque<Event>,
    steps: usize,
    steals: usize,
    diverged: bool,
    failure: Option<Violation>,
    lockdep: Vec<Violation>,
    /// Expected participant count; when reached, stall detection is
    /// immediate instead of grace-timed.
    declared_threads: Option<usize>,
    all_blocked_since: Option<Instant>,
}

impl Model {
    fn push_event(
        &mut self,
        tid: usize,
        obj: u64,
        loc: Option<&'static Location<'static>>,
        op: Op,
    ) {
        if self.trace.len() == TRACE_CAP {
            self.trace.pop_front();
        }
        self.trace.push_back(Event {
            step: self.steps,
            tid,
            obj,
            loc,
            op,
        });
    }

    fn thread_reports(&self) -> Vec<ThreadReport> {
        self.threads
            .iter()
            .enumerate()
            .map(|(tid, t)| {
                let fmt_loc = |l: &'static Location<'static>| format!("{}:{}", l.file(), l.line());
                let (state, waiting) = match &t.run {
                    RunSt::Ready if t.yielding => ("yielding".to_string(), None),
                    RunSt::Ready => ("runnable".to_string(), None),
                    RunSt::BlockedLock { lock, loc } => (
                        format!("blocked on mutex m{lock}"),
                        Some((*lock, fmt_loc(loc))),
                    ),
                    RunSt::BlockedCv { cv, loc } => (
                        format!("waiting on condvar c{cv}"),
                        Some((*cv, fmt_loc(loc))),
                    ),
                    RunSt::Finished => ("finished".to_string(), None),
                };
                ThreadReport {
                    tid,
                    name: t.name.clone(),
                    state,
                    held: t.held.iter().map(|&(l, loc)| (l, fmt_loc(loc))).collect(),
                    waiting,
                }
            })
            .collect()
    }
}

/// Panic payload used to unwind threads out of an aborted schedule.
pub(crate) struct SessionAbort;

// ---------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------

/// Shared state of one check session; the hooks talk to this.
pub(crate) struct SessionInner {
    model: Mutex<Model>,
    cv: Condvar,
    closed: AtomicBool,
}

type Mg<'a> = MutexGuard<'a, Model>;

impl SessionInner {
    fn new(strategy: Strategy, declared_threads: Option<usize>) -> SessionInner {
        SessionInner {
            model: Mutex::new(Model {
                threads: Vec::new(),
                current: None,
                locks: HashMap::new(),
                graph: LockGraph::default(),
                strat: StratState::new(strategy),
                choices: Vec::new(),
                trace: VecDeque::new(),
                steps: 0,
                steals: 0,
                diverged: false,
                failure: None,
                lockdep: Vec::new(),
                declared_threads,
                all_blocked_since: None,
            }),
            cv: Condvar::new(),
            closed: AtomicBool::new(false),
        }
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    fn lock_model(&self) -> Mg<'_> {
        self.model.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Hook prologue: take the model lock, bail out of aborted
    /// sessions, and mark this thread live again.
    fn enter(&self, tid: usize) -> Option<Mg<'_>> {
        let mut g = self.lock_model();
        if g.failure.is_some() {
            drop(g);
            if std::thread::panicking() {
                return None; // guard drops during unwind stay silent
            }
            panic::panic_any(SessionAbort);
        }
        let th = &mut g.threads[tid];
        th.suspect = false;
        th.yielding = false;
        g.all_blocked_since = None;
        Some(g)
    }

    /// Choose the next grant holder among Ready threads. Sets
    /// `current` (possibly `None`) and wakes everyone to re-check.
    fn schedule_next(&self, g: &mut Mg<'_>) {
        let pool = |exclude_suspects: bool, m: &Model| {
            m.threads
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t.run, RunSt::Ready) && !(exclude_suspects && t.suspect))
                .map(|(i, _)| i)
                .collect::<Vec<_>>()
        };
        let mut options = pool(true, g);
        if options.is_empty() {
            options = pool(false, g);
        }
        if options.is_empty() {
            g.current = None;
            self.check_stall(g);
        } else {
            let steps = g.steps;
            let mut diverged = g.diverged;
            let i = g.strat.pick(&options, steps, &mut diverged);
            g.diverged = diverged;
            if options.len() > 1 {
                g.choices.push((i as u32, options.len() as u32));
            }
            g.current = Some(options[i]);
        }
        self.cv.notify_all();
    }

    /// Is the model wedged? All live threads blocked (or yield-
    /// spinning) with at least one truly blocked. Declares the failure
    /// immediately when the declared thread count has registered,
    /// otherwise after a grace period (late-registering threads may
    /// still be on their way to their first hook).
    fn check_stall(&self, g: &mut Mg<'_>) {
        if g.failure.is_some() {
            return;
        }
        let mut live = 0usize;
        let mut blocked_lock = 0usize;
        let mut blocked_cv = 0usize;
        let mut yielding = 0usize;
        for t in &g.threads {
            match t.run {
                RunSt::Finished => {}
                RunSt::BlockedLock { .. } => {
                    live += 1;
                    blocked_lock += 1;
                }
                RunSt::BlockedCv { .. } => {
                    live += 1;
                    blocked_cv += 1;
                }
                RunSt::Ready => {
                    live += 1;
                    if t.yielding {
                        yielding += 1;
                    }
                }
            }
        }
        let wedged = live > 0
            && blocked_lock + blocked_cv + yielding == live
            && blocked_lock + blocked_cv > 0;
        if !wedged {
            g.all_blocked_since = None;
            return;
        }
        let declared_met = g.declared_threads.is_some_and(|n| g.threads.len() >= n);
        if !declared_met {
            let since = *g.all_blocked_since.get_or_insert_with(Instant::now);
            if since.elapsed() < STALL_GRACE {
                return;
            }
        }
        let kind = if blocked_lock > 0 {
            ViolationKind::Deadlock
        } else {
            ViolationKind::LostWakeup
        };
        let message = match kind {
            ViolationKind::Deadlock => format!(
                "deadlock: {live} live thread(s) all blocked ({blocked_lock} on mutexes, \
                 {blocked_cv} on condvars)"
            ),
            _ => format!(
                "lost wakeup: {blocked_cv} thread(s) parked in condvar wait sets with no \
                 notify in flight"
            ),
        };
        g.failure = Some(Violation {
            kind,
            threads: g.thread_reports(),
            trace: g.trace.iter().cloned().collect(),
            message,
        });
        self.cv.notify_all();
    }

    /// The grant holder went silent: assume it blocked outside the
    /// model (e.g. `JoinHandle::join`), mark it suspect and reassign.
    fn handle_timeout(&self, g: &mut Mg<'_>, tid: usize) {
        if g.failure.is_some() {
            return;
        }
        match g.current {
            Some(c) if c != tid && matches!(g.threads[c].run, RunSt::Ready) => {
                g.threads[c].suspect = true;
                g.steals += 1;
                g.diverged = true;
                g.push_event(tid, 0, None, Op::Steal { from: c });
                g.current = None;
                self.schedule_next(g);
            }
            None => self.check_stall(g),
            _ => {}
        }
    }

    /// Park until this thread is Ready *and* holds the grant.
    fn park_until_granted<'a>(&'a self, mut g: Mg<'a>, tid: usize) -> Mg<'a> {
        loop {
            if g.failure.is_some() {
                drop(g);
                if std::thread::panicking() {
                    // Cannot unwind twice; park forever is wrong too —
                    // let the already-running panic proceed.
                    return self.lock_model();
                }
                panic::panic_any(SessionAbort);
            }
            if matches!(g.threads[tid].run, RunSt::Ready) {
                match g.current {
                    Some(c) if c == tid => return g,
                    None => {
                        // Free grant (post-steal or registration race):
                        // take it. Counted as divergence only when
                        // another Ready thread could also have taken it.
                        let contenders = g
                            .threads
                            .iter()
                            .enumerate()
                            .filter(|(i, t)| *i != tid && matches!(t.run, RunSt::Ready))
                            .count();
                        if contenders > 0 {
                            g.diverged = true;
                        }
                        g.current = Some(tid);
                        self.cv.notify_all();
                        return g;
                    }
                    Some(_) => {}
                }
            }
            let (g2, to) = self
                .cv
                .wait_timeout(g, STEAL_TIMEOUT)
                .unwrap_or_else(PoisonError::into_inner);
            g = g2;
            if to.timed_out() {
                self.handle_timeout(&mut g, tid);
            }
        }
    }

    /// Hook epilogue: one schedule choice — keep running, or hand the
    /// grant to another Ready thread and wait to get it back.
    fn choice_point<'a>(&'a self, mut g: Mg<'a>, tid: usize) -> Mg<'a> {
        self.schedule_next(&mut g);
        if g.current == Some(tid) {
            return g;
        }
        self.park_until_granted(g, tid)
    }

    fn bump_step(&self, g: &mut Mg<'_>) {
        g.steps += 1;
        if g.steps > MAX_STEPS && g.failure.is_none() {
            g.failure = Some(Violation {
                kind: ViolationKind::Livelock,
                threads: g.thread_reports(),
                trace: g.trace.iter().cloned().collect(),
                message: format!("schedule exceeded {MAX_STEPS} schedule points"),
            });
            self.cv.notify_all();
        }
    }

    // -- operations called by the hooks --------------------------------

    pub(crate) fn participant_count(&self) -> usize {
        self.lock_model().threads.len()
    }

    pub(crate) fn register_thread(&self, name: String) -> usize {
        let mut g = self.lock_model();
        let tid = g.threads.len();
        g.threads.push(Th {
            name,
            run: RunSt::Ready,
            held: Vec::new(),
            suspect: false,
            yielding: false,
        });
        g.strat.on_register();
        g.all_blocked_since = None;
        g.push_event(tid, 0, None, Op::Register);
        if g.current.is_none() {
            self.schedule_next(&mut g);
        } else {
            self.cv.notify_all();
        }
        tid
    }

    pub(crate) fn thread_exited(&self, tid: usize) {
        if self.is_closed() {
            return;
        }
        let mut g = self.lock_model();
        if matches!(g.threads[tid].run, RunSt::Finished) {
            return;
        }
        g.threads[tid].run = RunSt::Finished;
        // Defensive: a thread that died (panic) with locks held
        // releases them in the model too — its real guards already
        // dropped during unwind.
        let held = std::mem::take(&mut g.threads[tid].held);
        for (id, _) in held {
            if let Some(lk) = g.locks.get_mut(&id) {
                if lk.owner == Some(tid) {
                    lk.owner = None;
                }
            }
            for t in g.threads.iter_mut() {
                if let RunSt::BlockedLock { lock, .. } = t.run {
                    if lock == id {
                        t.run = RunSt::Ready;
                    }
                }
            }
        }
        g.push_event(tid, 0, None, Op::Exit);
        if g.current == Some(tid) {
            g.current = None;
            self.schedule_next(&mut g);
        } else {
            self.cv.notify_all();
        }
    }

    /// Acquire `lock` in the model (then the caller takes the real,
    /// now-uncontended lock).
    pub(crate) fn lock_acquire(&self, tid: usize, lock: u64, loc: &'static Location<'static>) {
        let Some(g) = self.enter(tid) else { return };
        let mut g = self.park_until_granted(g, tid);
        loop {
            let free = g.locks.entry(lock).or_default().owner.is_none();
            if free {
                if let Some(l) = g.locks.get_mut(&lock) {
                    l.owner = Some(tid);
                }
                let held = g.threads[tid].held.clone();
                for (h, h_loc) in held {
                    if let Some(v) = g.graph.add_edge(tid, h, h_loc, lock, loc) {
                        g.lockdep.push(v);
                    }
                }
                g.threads[tid].held.push((lock, loc));
                g.push_event(tid, lock, Some(loc), Op::Lock);
                self.bump_step(&mut g);
                break;
            }
            // Record the want-edge even though we block: the lockdep
            // graph must see the inversion on the schedule where the
            // deadlock *manifests*, not only on ones where it doesn't.
            let held = g.threads[tid].held.clone();
            for (h, h_loc) in held {
                if let Some(v) = g.graph.add_edge(tid, h, h_loc, lock, loc) {
                    g.lockdep.push(v);
                }
            }
            g.threads[tid].run = RunSt::BlockedLock { lock, loc };
            self.schedule_next(&mut g);
            g = self.park_until_granted(g, tid);
        }
        drop(self.choice_point(g, tid));
    }

    pub(crate) fn lock_release(&self, tid: usize, lock: u64) {
        let Some(g) = self.enter(tid) else { return };
        let mut g = self.park_until_granted(g, tid);
        if let Some(lk) = g.locks.get_mut(&lock) {
            if lk.owner == Some(tid) {
                lk.owner = None;
            }
        }
        g.threads[tid].held.retain(|&(l, _)| l != lock);
        for t in g.threads.iter_mut() {
            if let RunSt::BlockedLock { lock: l, .. } = t.run {
                if l == lock {
                    t.run = RunSt::Ready;
                }
            }
        }
        g.push_event(tid, lock, None, Op::Unlock);
        self.bump_step(&mut g);
        drop(self.choice_point(g, tid));
    }

    /// Model `try_lock`: `true` when the lock was granted.
    pub(crate) fn lock_try_acquire(
        &self,
        tid: usize,
        lock: u64,
        loc: &'static Location<'static>,
    ) -> bool {
        let Some(g) = self.enter(tid) else {
            return true;
        };
        let mut g = self.park_until_granted(g, tid);
        let free = g.locks.entry(lock).or_default().owner.is_none();
        if free {
            if let Some(l) = g.locks.get_mut(&lock) {
                l.owner = Some(tid);
            }
            let held = g.threads[tid].held.clone();
            for (h, h_loc) in held {
                if let Some(v) = g.graph.add_edge(tid, h, h_loc, lock, loc) {
                    g.lockdep.push(v);
                }
            }
            g.threads[tid].held.push((lock, loc));
            g.push_event(tid, lock, Some(loc), Op::TryLockOk);
        } else {
            g.push_event(tid, lock, Some(loc), Op::TryLockFail);
        }
        self.bump_step(&mut g);
        drop(self.choice_point(g, tid));
        free
    }

    /// Model a condvar wait: atomically release `lock`, park in the
    /// wait set of `cv`, and on wakeup re-acquire `lock` before
    /// returning. The caller re-takes the real mutex afterwards.
    pub(crate) fn condvar_wait(
        &self,
        tid: usize,
        cv: u64,
        lock: u64,
        loc: &'static Location<'static>,
    ) {
        let Some(g) = self.enter(tid) else { return };
        let mut g = self.park_until_granted(g, tid);
        // Release the paired lock.
        if let Some(lk) = g.locks.get_mut(&lock) {
            if lk.owner == Some(tid) {
                lk.owner = None;
            }
        }
        g.threads[tid].held.retain(|&(l, _)| l != lock);
        for t in g.threads.iter_mut() {
            if let RunSt::BlockedLock { lock: l, .. } = t.run {
                if l == lock {
                    t.run = RunSt::Ready;
                }
            }
        }
        g.threads[tid].run = RunSt::BlockedCv { cv, loc };
        g.push_event(tid, cv, Some(loc), Op::CvWait);
        self.bump_step(&mut g);
        self.schedule_next(&mut g);
        // Wait to be notified (run -> Ready) and granted.
        g = self.park_until_granted(g, tid);
        // Re-acquire the lock, possibly blocking again.
        loop {
            let free = g.locks.entry(lock).or_default().owner.is_none();
            if free {
                if let Some(l) = g.locks.get_mut(&lock) {
                    l.owner = Some(tid);
                }
                g.threads[tid].held.push((lock, loc));
                break;
            }
            g.threads[tid].run = RunSt::BlockedLock { lock, loc };
            self.schedule_next(&mut g);
            g = self.park_until_granted(g, tid);
        }
        g.push_event(tid, cv, Some(loc), Op::CvWake);
        self.bump_step(&mut g);
        drop(self.choice_point(g, tid));
    }

    pub(crate) fn condvar_notify(&self, tid: usize, cv: u64, all: bool) {
        let Some(g) = self.enter(tid) else { return };
        let mut g = self.park_until_granted(g, tid);
        let waiters: Vec<usize> = g
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.run, RunSt::BlockedCv { cv: c, .. } if c == cv))
            .map(|(i, _)| i)
            .collect();
        if all {
            for &w in &waiters {
                g.threads[w].run = RunSt::Ready;
            }
            g.push_event(
                tid,
                cv,
                None,
                Op::NotifyAll {
                    woken: waiters.len(),
                },
            );
        } else if waiters.is_empty() {
            g.push_event(tid, cv, None, Op::NotifyOne { woken: None });
        } else {
            // WHICH waiter wakes is a schedule choice.
            let steps = g.steps;
            let mut diverged = g.diverged;
            let i = g.strat.pick(&waiters, steps, &mut diverged);
            g.diverged = diverged;
            if waiters.len() > 1 {
                g.choices.push((i as u32, waiters.len() as u32));
            }
            let w = waiters[i];
            g.threads[w].run = RunSt::Ready;
            g.push_event(tid, cv, None, Op::NotifyOne { woken: Some(w) });
        }
        self.bump_step(&mut g);
        drop(self.choice_point(g, tid));
    }

    /// A polite scheduling point: hand the grant to any other Ready
    /// thread; keep it only when no one else can run. Used by
    /// [`crate::explore::join_checked`] so a joining thread stays
    /// visible to stall detection.
    pub(crate) fn yield_now(&self, tid: usize) {
        let Some(g) = self.enter(tid) else { return };
        let mut g = self.park_until_granted(g, tid);
        g.threads[tid].yielding = true;
        let others: Vec<usize> = g
            .threads
            .iter()
            .enumerate()
            .filter(|(i, t)| *i != tid && matches!(t.run, RunSt::Ready) && !t.suspect)
            .map(|(i, _)| i)
            .collect();
        if others.is_empty() {
            // Nothing else can run; if everyone else is blocked this
            // is where deadlocks involving a joining main thread get
            // detected.
            self.check_stall(&mut g);
            if g.failure.is_some() {
                drop(g);
                panic::panic_any(SessionAbort);
            }
            return;
        }
        let steps = g.steps;
        let mut diverged = g.diverged;
        let i = g.strat.pick(&others, steps, &mut diverged);
        g.diverged = diverged;
        if others.len() > 1 {
            g.choices.push((i as u32, others.len() as u32));
        }
        g.current = Some(others[i]);
        g.push_event(tid, 0, None, Op::Yield);
        self.bump_step(&mut g);
        self.cv.notify_all();
        drop(self.park_until_granted(g, tid));
    }

    // -- session lifecycle ---------------------------------------------

    fn wait_all_finished(&self, budget: Duration) {
        let deadline = Instant::now() + budget;
        loop {
            {
                let g = self.lock_model();
                if g.threads.iter().all(|t| matches!(t.run, RunSt::Finished)) {
                    return;
                }
                if g.failure.is_some() {
                    // Aborted schedules: participants unwind on their
                    // own; give them a moment but don't insist.
                }
            }
            if Instant::now() >= deadline {
                return;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.cv.notify_all();
    }
}

fn fnv64(choices: &[(u32, u32)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &(i, n) in choices {
        for b in i.to_le_bytes().into_iter().chain(n.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Run `body` once under the model scheduler with `strategy` making
/// every schedule choice. `declared_threads` is the number of
/// participating threads the body is expected to involve (including
/// the calling thread); providing it makes deadlock detection
/// immediate instead of grace-timed.
///
/// Panics from the body that are not checker aborts propagate.
pub fn run_schedule<R>(
    strategy: Strategy,
    declared_threads: Option<usize>,
    body: impl FnOnce() -> R,
) -> ScheduleOutcome<R> {
    // Sessions are process-global (the shim hooks route to *the*
    // active session), so schedules from concurrently running tests
    // must serialize.
    static RUN_LOCK: Mutex<()> = Mutex::new(());
    let _serial = RUN_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let inner = std::sync::Arc::new(SessionInner::new(strategy, declared_threads));
    hooks::install_session(&inner);
    let result = panic::catch_unwind(AssertUnwindSafe(body));
    hooks::retire_main();
    inner.wait_all_finished(Duration::from_secs(2));
    inner.close();
    hooks::uninstall_session(&inner);
    let mut g = inner.lock_model();
    let outcome = ScheduleOutcome {
        result: None,
        violation: g.failure.take(),
        lockdep: std::mem::take(&mut g.lockdep),
        schedule_hash: fnv64(&g.choices),
        choices: std::mem::take(&mut g.choices),
        steps: g.steps,
        steals: g.steals,
        diverged: g.diverged,
    };
    drop(g);
    match result {
        Ok(r) => ScheduleOutcome {
            result: Some(r),
            ..outcome
        },
        Err(p) if p.downcast_ref::<SessionAbort>().is_some() => outcome,
        Err(p) => panic::resume_unwind(p),
    }
}
