//! The lock-order (lockdep) graph: a directed edge `A -> B` means some
//! thread acquired `B` while holding `A`. A cycle means a deadlock is
//! reachable under *some* schedule, whether or not the current one
//! realizes it — which is exactly why it is checked on every
//! acquisition rather than only when threads actually stick.

use crate::report::{LockOrderEdge, Violation, ViolationKind};
use std::collections::{BTreeSet, HashMap};
use std::panic::Location;

/// One recorded held-while-acquiring edge.
#[derive(Clone, Debug)]
struct EdgeInfo {
    from_loc: &'static Location<'static>,
    to_loc: &'static Location<'static>,
    tid: usize,
}

/// The acquisition-order graph for one check session.
#[derive(Default, Debug)]
pub struct LockGraph {
    edges: HashMap<u64, HashMap<u64, EdgeInfo>>,
    /// Cycles already reported, keyed by their sorted lock-id set, so
    /// a hot loop does not re-report the same inversion every pass.
    reported: BTreeSet<Vec<u64>>,
}

impl LockGraph {
    /// Record that `tid` acquired `to` (at `to_loc`) while holding
    /// `from` (acquired at `from_loc`). Returns a violation if this
    /// edge closes a new cycle.
    pub fn add_edge(
        &mut self,
        tid: usize,
        from: u64,
        from_loc: &'static Location<'static>,
        to: u64,
        to_loc: &'static Location<'static>,
    ) -> Option<Violation> {
        if from == to {
            // Recursive acquisition of the same lock: report as a
            // one-edge cycle (the shim mutex is not reentrant).
            let cycle = vec![LockOrderEdge {
                from,
                from_loc: format!("{}:{}", from_loc.file(), from_loc.line()),
                to,
                to_loc: format!("{}:{}", to_loc.file(), to_loc.line()),
                tid,
            }];
            if self.reported.insert(vec![from]) {
                return Some(Violation {
                    kind: ViolationKind::LockOrderInversion { cycle },
                    threads: Vec::new(),
                    trace: Vec::new(),
                    message: format!("t{tid} re-acquired m{from} it already holds"),
                });
            }
            return None;
        }
        self.edges
            .entry(from)
            .or_default()
            .entry(to)
            .or_insert(EdgeInfo {
                from_loc,
                to_loc,
                tid,
            });
        // The new edge from -> to closes a cycle iff `from` is
        // reachable from `to`.
        let path = self.path(to, from)?;
        let mut ids: Vec<u64> = path.iter().map(|e| e.0).collect();
        ids.push(from);
        ids.sort_unstable();
        ids.dedup();
        if !self.reported.insert(ids) {
            return None;
        }
        let mut cycle = vec![LockOrderEdge {
            from,
            from_loc: format!("{}:{}", from_loc.file(), from_loc.line()),
            to,
            to_loc: format!("{}:{}", to_loc.file(), to_loc.line()),
            tid,
        }];
        for (a, b) in &path {
            let info = &self.edges[a][b];
            cycle.push(LockOrderEdge {
                from: *a,
                from_loc: format!("{}:{}", info.from_loc.file(), info.from_loc.line()),
                to: *b,
                to_loc: format!("{}:{}", info.to_loc.file(), info.to_loc.line()),
                tid: info.tid,
            });
        }
        Some(Violation {
            kind: ViolationKind::LockOrderInversion { cycle },
            threads: Vec::new(),
            trace: Vec::new(),
            message: format!(
                "lock-order inversion: m{to} is acquired both before and after m{from}"
            ),
        })
    }

    /// DFS path from `src` to `dst` as a list of edges, if one exists.
    fn path(&self, src: u64, dst: u64) -> Option<Vec<(u64, u64)>> {
        let mut stack = vec![(src, Vec::new())];
        let mut seen = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            if node == dst {
                return Some(path);
            }
            if !seen.insert(node) {
                continue;
            }
            if let Some(nexts) = self.edges.get(&node) {
                for &next in nexts.keys() {
                    let mut p = path.clone();
                    p.push((node, next));
                    stack.push((next, p));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[track_caller]
    fn loc() -> &'static Location<'static> {
        Location::caller()
    }

    #[test]
    fn straight_order_is_clean() {
        let mut g = LockGraph::default();
        assert!(g.add_edge(0, 1, loc(), 2, loc()).is_none());
        assert!(g.add_edge(1, 2, loc(), 3, loc()).is_none());
        assert!(g.add_edge(0, 1, loc(), 3, loc()).is_none());
    }

    #[test]
    fn two_lock_inversion_is_flagged_once() {
        let mut g = LockGraph::default();
        assert!(g.add_edge(0, 1, loc(), 2, loc()).is_none());
        let v = g.add_edge(1, 2, loc(), 1, loc()).expect("cycle");
        match v.kind {
            ViolationKind::LockOrderInversion { cycle } => assert_eq!(cycle.len(), 2),
            other => panic!("unexpected kind {other:?}"),
        }
        // Same inversion again: deduplicated.
        assert!(g.add_edge(1, 2, loc(), 1, loc()).is_none());
    }

    #[test]
    fn three_lock_cycle_is_found() {
        let mut g = LockGraph::default();
        assert!(g.add_edge(0, 1, loc(), 2, loc()).is_none());
        assert!(g.add_edge(0, 2, loc(), 3, loc()).is_none());
        let v = g.add_edge(0, 3, loc(), 1, loc()).expect("cycle");
        match v.kind {
            ViolationKind::LockOrderInversion { cycle } => assert_eq!(cycle.len(), 3),
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn recursive_acquisition_is_flagged() {
        let mut g = LockGraph::default();
        assert!(g.add_edge(0, 7, loc(), 7, loc()).is_some());
    }
}
