//! Violation reports: what the checker found, on which threads, with
//! the acquisition traces needed to act on it.

use std::fmt;

/// One schedule-point operation, as recorded in the bounded trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// A thread registered with the session.
    Register,
    /// A thread finished (its exit guard ran).
    Exit,
    /// Mutex acquired.
    Lock,
    /// Mutex released.
    Unlock,
    /// `try_lock` that acquired the mutex.
    TryLockOk,
    /// `try_lock` that found the mutex held.
    TryLockFail,
    /// Entered a condvar wait set (and released the paired mutex).
    CvWait,
    /// Woke from a condvar wait (mutex re-acquired).
    CvWake,
    /// `notify_one`; `woken` is the chosen waiter, if any was parked.
    NotifyOne {
        /// Thread id of the waiter the strategy chose, if any.
        woken: Option<usize>,
    },
    /// `notify_all`; `woken` counts the waiters released.
    NotifyAll {
        /// Number of waiters released.
        woken: usize,
    },
    /// An explicit [`crate::hooks::yield_point`].
    Yield,
    /// The scheduler reassigned execution away from a thread that went
    /// silent (blocked outside the model, e.g. in `JoinHandle::join`).
    Steal {
        /// The thread the grant was taken from.
        from: usize,
    },
}

/// One entry of the bounded schedule trace.
#[derive(Clone, Debug)]
pub struct Event {
    /// Schedule-point counter at which the event happened.
    pub step: usize,
    /// Session-local id of the acting thread.
    pub tid: usize,
    /// Session-local id of the mutex/condvar acted on (0 = none).
    pub obj: u64,
    /// Source location of the call, when the hook captured one.
    pub loc: Option<&'static std::panic::Location<'static>>,
    /// What happened.
    pub op: Op,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:<5} t{} ", self.step, self.tid)?;
        match &self.op {
            Op::Register => write!(f, "register")?,
            Op::Exit => write!(f, "exit")?,
            Op::Lock => write!(f, "lock      m{}", self.obj)?,
            Op::Unlock => write!(f, "unlock    m{}", self.obj)?,
            Op::TryLockOk => write!(f, "try_lock  m{} -> acquired", self.obj)?,
            Op::TryLockFail => write!(f, "try_lock  m{} -> contended", self.obj)?,
            Op::CvWait => write!(f, "cv_wait   c{}", self.obj)?,
            Op::CvWake => write!(f, "cv_wake   c{}", self.obj)?,
            Op::NotifyOne { woken: Some(w) } => {
                write!(f, "notify_one c{} -> wakes t{w}", self.obj)?
            }
            Op::NotifyOne { woken: None } => write!(f, "notify_one c{} -> no waiter", self.obj)?,
            Op::NotifyAll { woken } => write!(f, "notify_all c{} -> wakes {woken}", self.obj)?,
            Op::Yield => write!(f, "yield")?,
            Op::Steal { from } => write!(f, "steal     (grant taken from t{from})")?,
        }
        if let Some(loc) = self.loc {
            write!(f, "  at {}:{}", loc.file(), loc.line())?;
        }
        Ok(())
    }
}

/// One edge of a lock-order cycle: `from` was held while `to` was
/// acquired.
#[derive(Clone, Debug)]
pub struct LockOrderEdge {
    /// The lock already held.
    pub from: u64,
    /// Where `from` was acquired.
    pub from_loc: String,
    /// The lock acquired under `from`.
    pub to: u64,
    /// Where `to` was acquired.
    pub to_loc: String,
    /// The thread that established the edge.
    pub tid: usize,
}

/// What class of concurrency bug a [`Violation`] reports.
#[derive(Clone, Debug)]
pub enum ViolationKind {
    /// Every live thread is model-blocked and at least one is waiting
    /// on a mutex: a realized deadlock.
    Deadlock,
    /// Every live thread is parked in a condvar wait set with no
    /// notify left to wake it: a lost/missed wakeup.
    LostWakeup,
    /// The lockdep graph acquired a cycle — a deadlock is reachable
    /// under some schedule even if this one completed.
    LockOrderInversion {
        /// The cycle, as held-while-acquiring edges.
        cycle: Vec<LockOrderEdge>,
    },
    /// The schedule exceeded the step budget without finishing.
    Livelock,
}

/// Snapshot of one thread at the moment a violation was raised.
#[derive(Clone, Debug)]
pub struct ThreadReport {
    /// Session-local thread id.
    pub tid: usize,
    /// OS thread name, when one was set.
    pub name: String,
    /// Human-readable run state ("runnable", "blocked on m3", …).
    pub state: String,
    /// Locks held, with the source location of each acquisition.
    pub held: Vec<(u64, String)>,
    /// The object this thread is blocked on, with the wait site.
    pub waiting: Option<(u64, String)>,
}

/// A concurrency bug found by the checker, with everything needed to
/// understand it: the class, per-thread acquisition state, and the
/// tail of the schedule trace that led there.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The bug class.
    pub kind: ViolationKind,
    /// Per-thread snapshots at detection time.
    pub threads: Vec<ThreadReport>,
    /// The last schedule-trace events before detection.
    pub trace: Vec<Event>,
    /// One-line summary.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "spinal-check violation: {}", self.message)?;
        match &self.kind {
            ViolationKind::LockOrderInversion { cycle } => {
                writeln!(f, "  lock-order cycle:")?;
                for e in cycle {
                    writeln!(
                        f,
                        "    t{} held m{} (acquired {}) while acquiring m{} ({})",
                        e.tid, e.from, e.from_loc, e.to, e.to_loc
                    )?;
                }
            }
            ViolationKind::Deadlock | ViolationKind::LostWakeup | ViolationKind::Livelock => {}
        }
        if !self.threads.is_empty() {
            writeln!(f, "  threads:")?;
            for t in &self.threads {
                write!(f, "    t{} [{}] {}", t.tid, t.name, t.state)?;
                if let Some((obj, loc)) = &t.waiting {
                    write!(f, ", waiting on {obj} at {loc}")?;
                }
                writeln!(f)?;
                for (lock, loc) in &t.held {
                    writeln!(f, "      holds m{lock} acquired at {loc}")?;
                }
            }
        }
        if !self.trace.is_empty() {
            writeln!(f, "  schedule tail ({} events):", self.trace.len())?;
            for e in &self.trace {
                writeln!(f, "    {e}")?;
            }
        }
        Ok(())
    }
}
