//! Exact soft demapping: per-bit log-likelihood ratios from received
//! symbols.
//!
//! For a square Gray-mapped QAM, the I and Q dimensions are independent,
//! so the LLR of each bit reduces to a one-dimensional sum over 2^m
//! levels — this is the `Θ(2^{α/2})` per-symbol cost the paper mentions
//! for QAM-2^α demapping (§8, "Raptor code").
//!
//! Convention: `LLR = ln P(bit=0 | y) − ln P(bit=1 | y)`, so positive
//! favours 0. The BP decoders downstream use the same convention.

use crate::qam::{gray_encode, Qam};
use spinal_channel::Complex;

/// Soft demapper bound to one QAM constellation.
#[derive(Debug, Clone)]
pub struct Demapper {
    qam: Qam,
    /// For each bit position within a dimension, the levels where that
    /// bit is 0 / 1 (precomputed).
    bit_sets: Vec<(Vec<f64>, Vec<f64>)>,
}

impl Demapper {
    /// Build a demapper for `qam`.
    pub fn new(qam: Qam) -> Self {
        let m = qam.bits_per_dim();
        let mut bit_sets = Vec::with_capacity(m as usize);
        for bit in 0..m {
            let mut zeros = Vec::new();
            let mut ones = Vec::new();
            for idx in 0..qam.levels().len() {
                let bits = gray_encode(idx as u32);
                // Bit positions are MSB-first within the m-bit group.
                if (bits >> (m - 1 - bit)) & 1 == 0 {
                    zeros.push(qam.levels()[idx]);
                } else {
                    ones.push(qam.levels()[idx]);
                }
            }
            bit_sets.push((zeros, ones));
        }
        Demapper { qam, bit_sets }
    }

    /// The constellation this demapper serves.
    pub fn qam(&self) -> &Qam {
        &self.qam
    }

    /// LLRs for the `2m` bits of one received symbol. `noise_power` is
    /// the complex noise power σ² (per-dimension variance is σ²/2).
    ///
    /// Returns bits in the same MSB-first order [`Qam::map`] consumes:
    /// I bits first, then Q bits.
    pub fn llrs(&self, y: Complex, noise_power: f64) -> Vec<f64> {
        let mut out = Vec::with_capacity(2 * self.qam.bits_per_dim() as usize);
        self.dim_llrs(y.re, noise_power, &mut out);
        self.dim_llrs(y.im, noise_power, &mut out);
        out
    }

    /// Demap a whole slice of symbols into a flat LLR vector.
    pub fn llrs_block(&self, ys: &[Complex], noise_power: f64) -> Vec<f64> {
        let mut out = Vec::with_capacity(ys.len() * 2 * self.qam.bits_per_dim() as usize);
        for &y in ys {
            self.dim_llrs(y.re, noise_power, &mut out);
            self.dim_llrs(y.im, noise_power, &mut out);
        }
        out
    }

    fn dim_llrs(&self, v: f64, noise_power: f64, out: &mut Vec<f64>) {
        let var = noise_power / 2.0;
        for (zeros, ones) in &self.bit_sets {
            // log-sum-exp over each level subset, numerically stabilised.
            let lse = |levels: &[f64]| -> f64 {
                let mut max = f64::NEG_INFINITY;
                for &l in levels {
                    let e = -(v - l) * (v - l) / (2.0 * var);
                    if e > max {
                        max = e;
                    }
                }
                let mut acc = 0.0;
                for &l in levels {
                    acc += (-(v - l) * (v - l) / (2.0 * var) - max).exp();
                }
                max + acc.ln()
            };
            out.push(lse(zeros) - lse(ones));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use spinal_channel::math::normal_pair;

    fn bits_of(v: u32, n: u32) -> Vec<bool> {
        (0..n).rev().map(|j| (v >> j) & 1 == 1).collect()
    }

    #[test]
    fn clean_symbol_gives_confident_correct_llrs() {
        let q = Qam::new(6);
        let d = Demapper::new(q.clone());
        for bits in [0u32, 0b101010, 0b111111, 0b010101] {
            let y = q.map(bits);
            let llrs = d.llrs(y, 0.01);
            let expect = bits_of(bits, 6);
            for (i, (&llr, &b)) in llrs.iter().zip(&expect).enumerate() {
                assert!(
                    if b { llr < -1.0 } else { llr > 1.0 },
                    "bits {bits:06b} pos {i}: llr {llr}"
                );
            }
        }
    }

    #[test]
    fn llr_sign_flips_with_bit() {
        // Symmetric pairs around zero flip the sign-bit LLR.
        let q = Qam::new(4);
        let d = Demapper::new(q.clone());
        let a = d.llrs(Complex::new(0.8, 0.8), 0.1);
        let b = d.llrs(Complex::new(-0.8, 0.8), 0.1);
        // First I bit (the sign bit under binary-reflected Gray) differs.
        assert!(a[0] * b[0] < 0.0, "a={a:?} b={b:?}");
        // Q bits identical.
        assert!((a[2] - b[2]).abs() < 1e-9 && (a[3] - b[3]).abs() < 1e-9);
    }

    #[test]
    fn hard_decisions_from_llrs_match_nearest_neighbour() {
        let q = Qam::new(4);
        let d = Demapper::new(q.clone());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            let bits = rng.gen::<u32>() & 0xF;
            let y = q.map(bits);
            // tiny perturbation
            let y = Complex::new(y.re + 0.03, y.im - 0.02);
            let llrs = d.llrs(y, 0.05);
            let hard: u32 = llrs.iter().fold(0, |acc, &l| (acc << 1) | (l < 0.0) as u32);
            assert_eq!(hard, q.hard_demap(y));
        }
    }

    #[test]
    fn llr_magnitudes_shrink_with_noise() {
        let q = Qam::new(6);
        let d = Demapper::new(q.clone());
        let y = q.map(0b110010);
        let crisp: f64 = d.llrs(y, 0.01).iter().map(|l| l.abs()).sum();
        let fuzzy: f64 = d.llrs(y, 1.0).iter().map(|l| l.abs()).sum();
        assert!(crisp > 5.0 * fuzzy, "crisp={crisp} fuzzy={fuzzy}");
    }

    #[test]
    fn demapped_bit_error_rate_is_sane_at_high_snr() {
        // QAM-16 at 20 dB: hard decisions from LLRs should be almost
        // always right.
        let q = Qam::new(4);
        let d = Demapper::new(q.clone());
        let mut rng = StdRng::seed_from_u64(11);
        let noise_power: f64 = 0.01; // 20 dB below unit signal power
        let mut errors = 0usize;
        let mut total = 0usize;
        for _ in 0..2000 {
            let bits = rng.gen::<u32>() & 0xF;
            let x = q.map(bits);
            let (nr, ni) = normal_pair(&mut rng);
            let y = Complex::new(
                x.re + nr * (noise_power / 2.0).sqrt(),
                x.im + ni * (noise_power / 2.0).sqrt(),
            );
            for (j, &l) in d.llrs(y, noise_power).iter().enumerate() {
                let sent = (bits >> (3 - j)) & 1 == 1;
                if (l < 0.0) != sent {
                    errors += 1;
                }
                total += 1;
            }
        }
        assert!(
            (errors as f64 / total as f64) < 1e-3,
            "BER {} too high",
            errors as f64 / total as f64
        );
    }

    #[test]
    fn block_demap_matches_symbolwise() {
        let q = Qam::new(6);
        let d = Demapper::new(q.clone());
        let ys = [q.map(0b1), q.map(0b111000), Complex::new(0.1, -0.3)];
        let blk = d.llrs_block(&ys, 0.2);
        let per: Vec<f64> = ys.iter().flat_map(|&y| d.llrs(y, 0.2)).collect();
        assert_eq!(blk, per);
    }
}
