//! Modulation substrate for the spinal-codes reproduction.
//!
//! The baseline codes the paper compares against (LDPC, Raptor, Strider)
//! all ride on conventional bit-to-symbol mappings: Gray-coded square QAM
//! with soft demapping at the receiver. This crate provides:
//!
//! * [`qam`] — square QAM constellations (QPSK … QAM-2^20+) with per-
//!   dimension Gray mapping, unit average power.
//! * [`demap`] — exact per-bit log-likelihood ratios ("we calculate the
//!   soft information between each received symbol and the other
//!   symbols", §8 — the careful demapping the paper credits for its
//!   strong Raptor baseline).
//! * [`fft`] — an iterative radix-2 FFT (no external DSP dependency).
//! * [`ofdm`] — an 802.11a/g-shaped OFDM modulator and the PAPR
//!   measurement behind Table 8.1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bpsk;
pub mod demap;
pub mod fft;
pub mod ofdm;
pub mod qam;

pub use demap::Demapper;
pub use ofdm::{OfdmConfig, PaprStats};
pub use qam::Qam;
