//! 802.11a/g-shaped OFDM and PAPR measurement (Table 8.1).
//!
//! The paper's point: once symbols ride on OFDM, constellation density has
//! a negligible effect on peak-to-average power ratio, so the dense
//! constellations spinal codes prefer cost nothing at the radio. Table 8.1
//! reports mean PAPR ≈ 7.3 dB and a 99.99th percentile ≈ 11.3–11.5 dB for
//! everything from QAM-4 to a truncated Gaussian.
//!
//! This module reproduces that measurement: a 64-subcarrier OFDM symbol
//! with the 802.11a/g occupancy (48 data + 4 BPSK pilots, carriers
//! −26…−1, 1…26), oversampled 4× through a zero-padded IFFT to expose the
//! analog peaks, PAPR measured per OFDM symbol as
//! `10·log10(max|y|²/mean|y|²)`.

use crate::fft::ifft;
use spinal_channel::Complex;

/// 802.11a/g OFDM configuration.
#[derive(Debug, Clone)]
pub struct OfdmConfig {
    /// FFT size (data occupies ±26 carriers as in 802.11a/g).
    pub n_fft: usize,
    /// Oversampling factor applied through zero-padding (4 reproduces
    /// analog peaks well).
    pub oversample: usize,
}

impl Default for OfdmConfig {
    fn default() -> Self {
        OfdmConfig {
            n_fft: 64,
            oversample: 4,
        }
    }
}

/// The 48 data subcarrier indices of 802.11a/g (±1…±26 minus pilots).
pub fn data_carriers() -> Vec<i32> {
    let pilots = [-21, -7, 7, 21];
    (-26..=26)
        .filter(|&k| k != 0 && !pilots.contains(&k))
        .collect()
}

/// The 4 pilot subcarrier indices.
pub const PILOT_CARRIERS: [i32; 4] = [-21, -7, 7, 21];

impl OfdmConfig {
    /// Modulate one OFDM symbol from exactly 48 data symbols; pilots are
    /// BPSK with the given polarity (scrambled by the caller per 802.11).
    /// Returns the oversampled time-domain waveform (no cyclic prefix —
    /// the CP repeats existing samples and cannot raise the peak).
    pub fn modulate(&self, data: &[Complex], pilot_polarity: bool) -> Vec<Complex> {
        let carriers = data_carriers();
        assert_eq!(
            data.len(),
            carriers.len(),
            "need {} data symbols",
            carriers.len()
        );
        let n = self.n_fft * self.oversample;
        let mut freq = vec![Complex::ZERO; n];
        let place = |k: i32| -> usize {
            // Standard FFT bin layout: negative carriers wrap to the top.
            if k >= 0 {
                k as usize
            } else {
                n - (-k as usize)
            }
        };
        for (&k, &d) in carriers.iter().zip(data) {
            freq[place(k)] = d;
        }
        let p = if pilot_polarity { 1.0 } else { -1.0 };
        for &k in &PILOT_CARRIERS {
            freq[place(k)] = Complex::new(p, 0.0);
        }
        let mut time = freq;
        ifft(&mut time);
        time
    }

    /// PAPR of a waveform in dB: `10·log10(max|y|² / mean|y|²)`.
    pub fn papr_db(waveform: &[Complex]) -> f64 {
        let mut peak = 0.0f64;
        let mut sum = 0.0f64;
        for v in waveform {
            let p = v.norm_sq();
            peak = peak.max(p);
            sum += p;
        }
        10.0 * (peak / (sum / waveform.len() as f64)).log10()
    }
}

/// Accumulates a PAPR distribution across many OFDM symbols and reports
/// the two statistics Table 8.1 lists.
#[derive(Debug, Default, Clone)]
pub struct PaprStats {
    samples: Vec<f64>,
}

impl PaprStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one OFDM symbol's PAPR (dB).
    pub fn record(&mut self, papr_db: f64) {
        self.samples.push(papr_db);
    }

    /// Number of recorded symbols.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean PAPR in dB (Table 8.1 column "Mean PAPR").
    ///
    /// Note this averages the per-symbol dB values, matching the table's
    /// presentation.
    pub fn mean_db(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// The quantile below which `q` of symbols fall (Table 8.1 uses
    /// q = 0.9999).
    pub fn quantile_db(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        let mut v = self.samples.clone();
        v.sort_unstable_by(|a, b| a.total_cmp(b));
        let idx = ((v.len() as f64 - 1.0) * q).round() as usize;
        v[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qam::Qam;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn carrier_layout_matches_standard() {
        let c = data_carriers();
        assert_eq!(c.len(), 48);
        assert!(!c.contains(&0));
        for p in PILOT_CARRIERS {
            assert!(!c.contains(&p));
        }
        assert_eq!(*c.first().unwrap(), -26);
        assert_eq!(*c.last().unwrap(), 26);
    }

    #[test]
    fn waveform_power_matches_loaded_carriers() {
        // Parseval: time-domain mean power = sum of carrier powers / N².
        let cfg = OfdmConfig::default();
        let data = vec![Complex::ONE; 48];
        let wave = cfg.modulate(&data, true);
        let n = (cfg.n_fft * cfg.oversample) as f64;
        let mean_p: f64 = wave.iter().map(|v| v.norm_sq()).sum::<f64>() / n;
        let expect = 52.0 / (n * n); // 48 data + 4 pilots, unit power each
        assert!((mean_p - expect).abs() < 1e-12, "mean {mean_p} vs {expect}");
    }

    #[test]
    fn all_ones_gives_high_papr() {
        // Identical symbols on all carriers create a near-impulse: the
        // worst-case PAPR scenario scramblers exist to avoid.
        let cfg = OfdmConfig::default();
        let wave = cfg.modulate(&vec![Complex::ONE; 48], true);
        assert!(OfdmConfig::papr_db(&wave) > 15.0);
    }

    #[test]
    fn random_qpsk_papr_is_in_expected_band() {
        // The Table 8.1 regime: random data → mean PAPR around 7.3 dB.
        let cfg = OfdmConfig::default();
        let qam = Qam::new(2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut stats = PaprStats::new();
        for _ in 0..2000 {
            let data: Vec<Complex> = (0..48).map(|_| qam.map(rng.gen::<u32>() & 3)).collect();
            let wave = cfg.modulate(&data, rng.gen());
            stats.record(OfdmConfig::papr_db(&wave));
        }
        let mean = stats.mean_db();
        assert!((6.5..8.2).contains(&mean), "mean PAPR {mean} dB");
        let q = stats.quantile_db(0.99);
        assert!(q > mean + 1.0, "tail {q} dB should exceed mean {mean}");
    }

    #[test]
    fn papr_of_constant_envelope_is_zero() {
        let wave = vec![Complex::new(0.7, 0.7); 256];
        assert!(OfdmConfig::papr_db(&wave).abs() < 1e-12);
    }

    #[test]
    fn quantile_extremes() {
        let mut s = PaprStats::new();
        for i in 0..100 {
            s.record(i as f64);
        }
        assert_eq!(s.quantile_db(0.0), 0.0);
        assert_eq!(s.quantile_db(1.0), 99.0);
        assert!((s.mean_db() - 49.5).abs() < 1e-12);
    }
}
