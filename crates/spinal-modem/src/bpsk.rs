//! BPSK: one bit per complex symbol on the I axis (802.11 MCS 0).

use spinal_channel::Complex;

/// Map one bit to ±1 (bit 0 → +1), unit power.
#[inline]
pub fn modulate_bit(bit: bool) -> Complex {
    Complex::new(if bit { -1.0 } else { 1.0 }, 0.0)
}

/// Modulate a bit slice.
pub fn modulate(bits: &[bool]) -> Vec<Complex> {
    bits.iter().map(|&b| modulate_bit(b)).collect()
}

/// Exact LLR for a received symbol under complex AWGN of power σ²
/// (per-dimension variance σ²/2): `LLR = 4·Re(y)/σ²`, positive ⇒ bit 0.
#[inline]
pub fn llr(y: Complex, noise_power: f64) -> f64 {
    4.0 * y.re / noise_power
}

/// Demap a slice of received symbols to LLRs.
pub fn llrs(ys: &[Complex], noise_power: f64) -> Vec<f64> {
    ys.iter().map(|&y| llr(y, noise_power)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_antipodal_unit_power() {
        assert_eq!(modulate_bit(false), Complex::new(1.0, 0.0));
        assert_eq!(modulate_bit(true), Complex::new(-1.0, 0.0));
        assert!((modulate_bit(false).norm_sq() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn llr_sign_follows_receive_sign() {
        assert!(llr(Complex::new(0.9, 0.3), 0.5) > 0.0);
        assert!(llr(Complex::new(-0.2, -0.9), 0.5) < 0.0);
    }

    #[test]
    fn llr_scales_inversely_with_noise() {
        let y = Complex::new(1.0, 0.0);
        assert!(llr(y, 0.1) > llr(y, 1.0));
        assert!((llr(y, 1.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_slices() {
        let bits = [true, false, false, true];
        let sym = modulate(&bits);
        let l = llrs(&sym, 0.3);
        for (b, l) in bits.iter().zip(l) {
            assert_eq!(*b, l < 0.0);
        }
    }
}
