//! Gray-mapped square QAM.
//!
//! A QAM-4^m constellation carries `2m` bits per symbol: `m` bits choose
//! the I level, `m` the Q level, each through a Gray code so adjacent
//! levels differ in one bit. Constellations are normalised to unit
//! average power, matching the SNR convention used across the workspace.

use spinal_channel::Complex;

/// A square QAM constellation with Gray mapping.
#[derive(Debug, Clone)]
pub struct Qam {
    bits_per_dim: u32,
    /// Amplitude levels indexed by the *Gray-decoded* integer.
    levels: Vec<f64>,
}

/// Binary-reflected Gray code.
#[inline]
pub fn gray_encode(x: u32) -> u32 {
    x ^ (x >> 1)
}

/// Inverse of [`gray_encode`], via the logarithmic prefix-XOR fold.
#[inline]
pub fn gray_decode(g: u32) -> u32 {
    let mut y = g;
    let mut s = 1;
    while s < 32 {
        y ^= y >> s;
        s <<= 1;
    }
    y
}

impl Qam {
    /// Build QAM with `bits_per_symbol` total bits (must be even ≥ 2):
    /// 2 → QPSK, 4 → QAM-16, 6 → QAM-64, 8 → QAM-256, 20 → QAM-2^20.
    pub fn new(bits_per_symbol: u32) -> Self {
        assert!(
            bits_per_symbol >= 2 && bits_per_symbol.is_multiple_of(2) && bits_per_symbol <= 26,
            "bits per symbol must be even in 2..=26, got {bits_per_symbol}"
        );
        let m = bits_per_symbol / 2;
        let levels_n = 1usize << m;
        // Levels ±1, ±3, …, normalised so E[I² + Q²] = 1.
        // E[l²] over ±1..±(2M−1) = (M²−1)·4/3 + 1 → use exact sum.
        let raw: Vec<f64> = (0..levels_n)
            .map(|i| (2 * i as i64 - (levels_n as i64 - 1)) as f64)
            .collect();
        let ms: f64 = raw.iter().map(|x| x * x).sum::<f64>() / levels_n as f64;
        let scale = (0.5 / ms).sqrt(); // per-dim power ½ → unit complex power
        Qam {
            bits_per_dim: m,
            levels: raw.into_iter().map(|x| x * scale).collect(),
        }
    }

    /// Total bits per symbol.
    pub fn bits_per_symbol(&self) -> u32 {
        2 * self.bits_per_dim
    }

    /// Bits per dimension (`m`).
    pub fn bits_per_dim(&self) -> u32 {
        self.bits_per_dim
    }

    /// Number of points (`4^m`).
    pub fn points(&self) -> u64 {
        1u64 << self.bits_per_symbol()
    }

    /// Amplitude levels (ascending).
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// Map `m` bits (in the low bits of `b`) to one dimension's level via
    /// Gray decoding, so adjacent levels differ in exactly one bit.
    #[inline]
    pub fn map_dim(&self, b: u32) -> f64 {
        self.levels[gray_decode(b) as usize]
    }

    /// Map `2m` bits to a symbol: high `m` bits → I, low `m` bits → Q.
    #[inline]
    pub fn map(&self, bits: u32) -> Complex {
        let m = self.bits_per_dim;
        Complex::new(self.map_dim(bits >> m), self.map_dim(bits & ((1 << m) - 1)))
    }

    /// Modulate a bit slice (MSB-first per symbol); pads the final symbol
    /// with zero bits if needed.
    pub fn modulate(&self, bits: &[bool]) -> Vec<Complex> {
        let bps = self.bits_per_symbol() as usize;
        bits.chunks(bps)
            .map(|chunk| {
                let mut v = 0u32;
                for i in 0..bps {
                    v = (v << 1) | chunk.get(i).copied().unwrap_or(false) as u32;
                }
                self.map(v)
            })
            .collect()
    }

    /// Hard-decision demap: nearest constellation point's bits.
    pub fn hard_demap(&self, y: Complex) -> u32 {
        let m = self.bits_per_dim;
        (self.hard_dim(y.re) << m) | self.hard_dim(y.im)
    }

    fn hard_dim(&self, v: f64) -> u32 {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, &l) in self.levels.iter().enumerate() {
            let d = (v - l) * (v - l);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        gray_encode(best as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_round_trip() {
        for x in 0..1024u32 {
            assert_eq!(gray_decode(gray_encode(x)), x);
        }
    }

    #[test]
    fn gray_adjacent_differ_in_one_bit() {
        for x in 0..255u32 {
            let d = gray_encode(x) ^ gray_encode(x + 1);
            assert_eq!(d.count_ones(), 1, "x={x}");
        }
    }

    #[test]
    fn unit_average_power() {
        for bps in [2, 4, 6, 8, 10, 20] {
            let q = Qam::new(bps);
            // Exact enumeration when feasible; the per-dimension level
            // table is what defines the power, so summing level² over
            // each dimension independently is exact for any size.
            let per_dim: f64 =
                q.levels().iter().map(|l| l * l).sum::<f64>() / q.levels().len() as f64;
            let p = 2.0 * per_dim;
            assert!((p - 1.0).abs() < 1e-9, "QAM-{}: power {p}", q.points());
        }
    }

    #[test]
    fn qpsk_is_four_diagonal_points() {
        let q = Qam::new(2);
        let pts: Vec<Complex> = (0..4).map(|b| q.map(b)).collect();
        for p in &pts {
            assert!((p.re.abs() - 0.5f64.sqrt()).abs() < 1e-12);
            assert!((p.im.abs() - 0.5f64.sqrt()).abs() < 1e-12);
        }
        // All four quadrants present.
        let quads: std::collections::HashSet<(bool, bool)> =
            pts.iter().map(|p| (p.re > 0.0, p.im > 0.0)).collect();
        assert_eq!(quads.len(), 4);
    }

    #[test]
    fn gray_neighbours_in_constellation() {
        // Horizontally adjacent QAM-16 points must differ in one bit.
        let q = Qam::new(4);
        for i in 0..3u32 {
            let a = gray_encode(i);
            let b = gray_encode(i + 1);
            assert_eq!((a ^ b).count_ones(), 1);
            assert!(q.map_dim(b) > q.map_dim(a));
        }
    }

    #[test]
    fn modulate_round_trips_through_hard_demap() {
        let q = Qam::new(6);
        let bits: Vec<bool> = (0..120).map(|i| (i * 7) % 3 == 1).collect();
        let syms = q.modulate(&bits);
        assert_eq!(syms.len(), 20);
        let mut recovered = Vec::new();
        for s in syms {
            let v = q.hard_demap(s);
            for j in (0..6).rev() {
                recovered.push((v >> j) & 1 == 1);
            }
        }
        assert_eq!(recovered, bits);
    }

    #[test]
    fn hard_demap_is_nearest_neighbour() {
        let q = Qam::new(4);
        // Slightly perturbed point still demaps to itself.
        let bits = 0b1011u32;
        let s = q.map(bits);
        let y = Complex::new(s.re + 0.05, s.im - 0.05);
        assert_eq!(q.hard_demap(y), bits);
    }

    #[test]
    #[should_panic]
    fn rejects_odd_bits() {
        Qam::new(3);
    }
}
