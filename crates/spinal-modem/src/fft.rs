//! Iterative radix-2 decimation-in-time FFT.
//!
//! Only power-of-two sizes are needed (the OFDM substrate uses 64- and
//! 256-point transforms), so a textbook Cooley–Tukey with precomputable
//! twiddles is the simplest robust choice — no external DSP crates.

use spinal_channel::Complex;

/// In-place FFT. `x.len()` must be a power of two.
pub fn fft(x: &mut [Complex]) {
    transform(x, false);
}

/// In-place inverse FFT (includes the 1/N normalisation).
pub fn ifft(x: &mut [Complex]) {
    transform(x, true);
    let n = x.len() as f64;
    for v in x.iter_mut() {
        *v = *v / n;
    }
}

fn transform(x: &mut [Complex], inverse: bool) {
    let n = x.len();
    assert!(n.is_power_of_two(), "FFT size {n} must be a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            x.swap(i, j);
        }
    }

    // Butterfly stages.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_phase(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for i in 0..len / 2 {
                let u = x[start + i];
                let v = x[start + i + len / 2] * w;
                x[start + i] = u + v;
                x[start + i + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        a.dist_sq(b) < 1e-18
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        fft(&mut x);
        for v in &x {
            assert!(close(*v, Complex::ONE));
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k = 5;
        let mut x: Vec<Complex> = (0..n)
            .map(|t| {
                Complex::from_phase(2.0 * std::f64::consts::PI * k as f64 * t as f64 / n as f64)
            })
            .collect();
        fft(&mut x);
        for (bin, v) in x.iter().enumerate() {
            if bin == k {
                assert!((v.abs() - n as f64).abs() < 1e-9, "bin {bin}: {}", v.abs());
            } else {
                assert!(v.abs() < 1e-9, "leakage in bin {bin}: {}", v.abs());
            }
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let orig: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let mut x = orig.clone();
        fft(&mut x);
        ifft(&mut x);
        for (a, b) in orig.iter().zip(&x) {
            assert!(a.dist_sq(*b) < 1e-18);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let x: Vec<Complex> = (0..128)
            .map(|i| Complex::new(((i * 37) % 11) as f64 - 5.0, ((i * 13) % 7) as f64 - 3.0))
            .collect();
        let time_energy: f64 = x.iter().map(|v| v.norm_sq()).sum();
        let mut f = x.clone();
        fft(&mut f);
        let freq_energy: f64 = f.iter().map(|v| v.norm_sq()).sum::<f64>() / x.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy);
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex> = (0..16).map(|i| Complex::new(i as f64, 0.0)).collect();
        let b: Vec<Complex> = (0..16)
            .map(|i| Complex::new(0.0, (16 - i) as f64))
            .collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let (mut fa, mut fb, mut fs) = (a, b, sum);
        fft(&mut fa);
        fft(&mut fb);
        fft(&mut fs);
        for i in 0..16 {
            assert!(fs[i].dist_sq(fa[i] + fb[i]) < 1e-16);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two() {
        let mut x = vec![Complex::ZERO; 12];
        fft(&mut x);
    }
}
