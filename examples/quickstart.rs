//! Quickstart: send one message over a noisy channel with spinal codes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the whole §3–§4 pipeline: encode, transmit incrementally
//! over AWGN, buffer at the receiver, and attempt decoding after each
//! chunk until the message comes back — rateless operation in a dozen
//! lines.

use spinal_codes::{
    AwgnChannel, BubbleDecoder, Channel, CodeParams, DecodeRequest, Encoder, Message, RxSymbols,
    Schedule,
};

fn main() {
    // The paper's default parameters: k=4, c=6, B=256, d=1, 8-way
    // puncturing, two tail symbols (§7.1). n = 256-bit code blocks.
    let params = CodeParams::default();
    println!(
        "spinal code: n={} k={} c={} B={} d={}",
        params.n, params.k, params.c, params.b, params.d
    );

    let payload = b"Hello, spinal codes! (rateless)"; // ≤ n/8 = 32 bytes
    assert!(payload.len() <= params.n / 8);
    let mut bytes = payload.to_vec();
    bytes.resize(params.n / 8, 0);
    let message = Message::from_bytes(bytes, params.n);

    let mut encoder = Encoder::new(&params, &message);
    let decoder = BubbleDecoder::new(&params);
    let schedule = Schedule::new(params.num_spines(), params.tail, params.puncturing);
    let mut rx = RxSymbols::new(schedule.clone());

    let snr_db = 12.0;
    let mut channel = AwgnChannel::new(snr_db, 42);

    // Stream subpass-sized chunks until the receiver decodes.
    let boundaries = schedule.subpass_boundaries(40 * schedule.symbols_per_pass());
    let mut sent = 0;
    for boundary in boundaries {
        let tx = encoder.next_symbols(boundary - sent);
        sent = boundary;
        rx.push(&channel.transmit(&tx));

        let result = DecodeRequest::new(&decoder, &rx).decode();
        if result.message == message {
            let rate = params.n as f64 / sent as f64;
            let capacity = spinal_codes::channel::capacity::awgn_capacity_db(snr_db);
            println!("decoded after {sent} symbols");
            println!("rate      : {rate:.2} bits/symbol");
            println!("capacity  : {capacity:.2} bits/symbol at {snr_db} dB");
            println!(
                "payload   : {}",
                String::from_utf8_lossy(&result.message.as_bytes()[..payload.len()])
            );
            return;
        }
    }
    println!("gave up — channel too noisy for the give-up cap");
}
