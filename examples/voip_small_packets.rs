//! Small-packet telephony workload: spinal vs Raptor vs Strider.
//!
//! ```sh
//! cargo run --release --example voip_small_packets
//! ```
//!
//! §8.2's point about Internet telephony and gaming: natural packets are
//! 64–256 bytes, and code behaviour at those sizes differs wildly. This
//! example runs a 160-byte-packet voice stream (a 20 ms G.711-ish frame)
//! through all three rateless codes at a handful of SNRs and prints the
//! achieved rates — reproducing the shape of Figure 8-3: spinal degrades
//! gracefully, Strider collapses at small block sizes.

use spinal_codes::sim::{summarize, RaptorRun, SpinalRun, StriderRun, Trial};
use spinal_codes::CodeParams;

fn main() {
    let packet_bits = 160 * 8; // 160-byte VoIP frame → 1280 bits
    let trials = 4;
    println!("packet size: {packet_bits} bits; {trials} packets per point");
    println!("snr_db,spinal_rate,raptor_rate,strider_plus_rate,capacity");

    for snr_db in [5.0, 10.0, 15.0, 20.0, 25.0] {
        let capacity = spinal_codes::channel::capacity::awgn_capacity_db(snr_db);

        let spinal = SpinalRun::new(CodeParams::default().with_n(packet_bits));
        let spinal_trials: Vec<Trial> = (0..trials)
            .map(|s| spinal.run_trial(snr_db, s as u64))
            .collect();
        let spinal_rate = summarize(snr_db, &spinal_trials).rate;

        let raptor = RaptorRun::new(packet_bits, 8);
        let raptor_trials: Vec<Trial> = (0..trials)
            .map(|s| raptor.run_trial(snr_db, s as u64))
            .collect();
        let raptor_rate = summarize(snr_db, &raptor_trials).rate;

        // Strider at its paper-recommended 33 layers: each layer carries
        // only ~39 bits here — the cause of its small-packet collapse.
        let strider = StriderRun::new(packet_bits, 33)
            .plus()
            .with_turbo_iterations(5);
        let strider_trials: Vec<Trial> = (0..trials)
            .map(|s| strider.run_trial(snr_db, s as u64))
            .collect();
        let strider_rate = summarize(snr_db, &strider_trials).rate;

        println!("{snr_db:.1},{spinal_rate:.3},{raptor_rate:.3},{strider_rate:.3},{capacity:.3}");
    }
    println!();
    println!("expect: spinal > raptor > strider+ at every SNR (Figure 8-3)");
}
