//! Spinal codes *without* controlling the physical layer (§3).
//!
//! ```sh
//! cargo run --release --example spinal_over_existing_phy
//! ```
//!
//! Here the radio is a fixed Gray-mapped QAM-64 PHY — we cannot feed it
//! raw I/Q points. The spinal encoder therefore emits coded *bits*, the
//! stock modulator maps them, and the receiver's standard soft demapper
//! produces per-bit LLRs that drive the bit-mode bubble decoder. Rate
//! adaptation still disappears: the same bit stream serves every SNR,
//! just with more or fewer symbols.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spinal_codes::core::bitmode::{BitEncoder, BitModeDecoder, RxLlrs, BITS_PER_POSITION};
use spinal_codes::modem::{Demapper, Qam};
use spinal_codes::{AwgnChannel, Channel, CodeParams, Message, Schedule};

fn main() {
    let params = CodeParams::default(); // n=256, k=4, B=256
    let qam = Qam::new(4); // the PHY we do not control (16-QAM: 8 coded bits = 2 symbols)
    let demapper = Demapper::new(qam);
    println!(
        "spinal (bit mode, {} coded bits/position) over fixed QAM-16 PHY",
        BITS_PER_POSITION
    );
    println!("snr_db,symbols_used,rate_bits_per_symbol,capacity");

    for snr_db in [8.0, 14.0, 20.0, 26.0] {
        let mut rng = StdRng::seed_from_u64(77);
        let message = Message::random(params.n, || rng.gen());
        let mut encoder = BitEncoder::new(&params, &message);
        let decoder = BitModeDecoder::new(&params);
        let schedule = Schedule::new(params.num_spines(), params.tail, params.puncturing);
        let mut rx = RxLlrs::new(schedule.clone());
        let mut channel = AwgnChannel::new(snr_db, 1000 + snr_db as u64);

        let mut positions = 0usize;
        let mut qam_symbols = 0usize;
        let mut decoded = false;
        for boundary in schedule.subpass_boundaries(40 * schedule.symbols_per_pass()) {
            // Each schedule position carries 8 coded bits.
            let bits = encoder.next_bits(boundary - positions);
            positions = boundary;
            let tx = demapper.qam().modulate(&bits);
            qam_symbols += tx.len();
            let noisy = channel.transmit(&tx);
            rx.push(&demapper.llrs_block(&noisy, 1.0 / channel.snr()));

            if decoder.decode(&rx).message == message {
                let rate = params.n as f64 / qam_symbols as f64;
                let cap = spinal_codes::channel::capacity::awgn_capacity_db(snr_db);
                println!("{snr_db:.0},{qam_symbols},{rate:.3},{cap:.3}");
                decoded = true;
                break;
            }
        }
        if !decoded {
            println!("{snr_db:.0},gave up,,");
        }
    }
    println!();
    println!("note: bit mode pays the demapping information loss the paper describes —");
    println!("direct symbol mode (examples/quickstart.rs) is the preferred §3 operation");
}
