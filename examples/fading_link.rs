//! A mobile link: spinal codes over Rayleigh fading, with and without
//! channel-state information.
//!
//! ```sh
//! cargo run --release --example fading_link
//! ```
//!
//! §8.3's scenario: a walking-speed receiver sees coherence times of
//! tens of symbols. The same spinal code runs (a) with exact per-symbol
//! CSI in the branch metric and (b) completely blind, using the plain
//! AWGN metric — the robustness experiment of Figure 8-5. No
//! reconfiguration of the code is needed in either case; only the branch
//! metric changes, and that automatically (the receive buffer either
//! carries coefficients or defaults them to 1).

use spinal_codes::sim::{summarize_vs_capacity, LinkChannel, SpinalRun, Trial};
use spinal_codes::CodeParams;

fn main() {
    let params = CodeParams::default(); // n=256
    let trials = 6;
    println!(
        "Rayleigh fading link, n={} bits, {trials} packets/point",
        params.n
    );
    println!("snr_db,tau,rate_with_csi,rate_blind,ergodic_capacity");

    for snr_db in [10.0, 20.0] {
        for tau in [1usize, 10, 100] {
            let capacity = spinal_codes::channel::capacity::rayleigh_ergodic_capacity_db(snr_db);

            let with_csi = SpinalRun::new(params.clone())
                .with_channel(LinkChannel::Rayleigh { tau, csi: true });
            let t: Vec<Trial> = (0..trials)
                .map(|s| with_csi.run_trial(snr_db, 7000 + s as u64))
                .collect();
            let rate_csi = summarize_vs_capacity(snr_db, &t, capacity).rate;

            let blind = SpinalRun::new(params.clone())
                .with_channel(LinkChannel::Rayleigh { tau, csi: false });
            let t: Vec<Trial> = (0..trials)
                .map(|s| blind.run_trial(snr_db, 7000 + s as u64))
                .collect();
            let rate_blind = summarize_vs_capacity(snr_db, &t, capacity).rate;

            println!("{snr_db:.0},{tau},{rate_csi:.3},{rate_blind:.3},{capacity:.3}");
        }
    }
    println!();
    println!("expect: CSI ≥ blind everywhere; both degrade gracefully as τ shrinks");
}
