//! File transfer over a time-varying link, with real link-layer framing.
//!
//! ```sh
//! cargo run --release --example file_transfer
//! ```
//!
//! Exercises §6 end to end: a multi-kilobyte "file" is segmented into
//! CRC-16-protected code blocks, each block is transmitted ratelessly
//! over a channel whose SNR drifts between frames (the motivating
//! scenario of §1 — no bit-rate selection anywhere), the receiver
//! CRC-validates candidates, ACKs blocks, and reassembles the datagram.
//! Frame erasures (lost preambles) are injected to show the receiver
//! staying synchronised via schedule skipping (§7.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spinal_codes::core::framing::FrameReassembly;
use spinal_codes::{
    AwgnChannel, BubbleDecoder, Channel, CodeParams, DecodeRequest, Encoder, FrameBuilder,
    RxSymbols, Schedule,
};

fn main() {
    let params = CodeParams::default().with_n(1024); // paper's block cap (§6)
    let builder = FrameBuilder::new(params.n);

    // A pseudo-random 8 KiB "file".
    let mut rng = StdRng::seed_from_u64(2024);
    let file: Vec<u8> = (0..8192).map(|_| rng.gen()).collect();
    let blocks = builder.build(&file);
    println!(
        "file: {} bytes → {} code blocks of {} bits ({} payload bits + 16-bit CRC)",
        file.len(),
        blocks.len(),
        params.n,
        builder.payload_bits()
    );

    let schedule = Schedule::new(params.num_spines(), params.tail, params.puncturing);
    let decoder = BubbleDecoder::new(&params);
    let mut reassembly = FrameReassembly::new(builder, 1, blocks.len(), file.len());

    let mut total_symbols = 0usize;
    let mut total_erased = 0usize;
    for (i, block) in blocks.iter().enumerate() {
        // SNR drifts block to block: a slow fade between 6 and 18 dB.
        let snr_db = 12.0 + 6.0 * ((i as f64) * 0.7).sin();
        let mut channel = AwgnChannel::new(snr_db, 1000 + i as u64);
        let mut encoder = Encoder::new(&params, block);
        let mut rx = RxSymbols::new(schedule.clone());

        let boundaries = schedule.subpass_boundaries(60 * schedule.symbols_per_pass());
        let mut sent = 0usize;
        for boundary in boundaries {
            let tx = encoder.next_symbols(boundary - sent);
            sent = boundary;
            // 5% of subpass frames lose their preamble and are erased.
            if rng.gen::<f64>() < 0.05 {
                rx.skip(tx.len());
                total_erased += tx.len();
            } else {
                rx.push(&channel.transmit(&tx));
            }
            // The receiver validates with the real CRC — no genie here.
            let candidate = DecodeRequest::new(&decoder, &rx).decode();
            if reassembly.offer(i, &candidate.message) {
                break;
            }
        }
        total_symbols += sent;
        let rate = params.n as f64 / sent as f64;
        println!(
            "block {i:2}: SNR {snr_db:5.1} dB  {sent:5} symbols  rate {rate:4.2} b/s  acks={}",
            reassembly
                .ack_bitmap()
                .iter()
                .map(|&b| if b { '1' } else { '0' })
                .collect::<String>()
        );
    }

    assert!(reassembly.complete(), "transfer failed");
    let out = reassembly.into_datagram().unwrap();
    assert_eq!(out, file, "reassembled file differs!");
    println!(
        "transfer OK: {} bytes in {} symbols ({} erased in transit), {:.2} bits/symbol overall",
        file.len(),
        total_symbols,
        total_erased,
        (file.len() * 8) as f64 / total_symbols as f64
    );
}
