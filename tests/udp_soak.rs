//! Real-network soak (ROADMAP item 1): the full transfer + resume
//! cycle over two actual OS UDP sockets on the loopback interface —
//! not the in-memory `LoopbackLink`. The wire bytes cross the kernel,
//! so this exercises datagram sizing, non-blocking send/recv semantics
//! and peer filtering for real.
//!
//! The `#[ignore]`-by-default soak runs many seeded cycles
//! (`UDP_SOAK_CYCLES` scales it); the smoke variant below it is small
//! enough for the CI `recovery-smoke` job and still drives one
//! blackout → partial delivery → resume → bit-exact round trip.

use std::collections::BTreeSet;
use std::io;

use spinal_codes::net::{
    resume_transfer, run_transfer, ChaosLink, Datagram, FaultPlan, Packet, TransferConfig,
    TransferOutcome, TransferReport, UdpLink,
};
use spinal_codes::CodeParams;

fn params() -> CodeParams {
    CodeParams::default().with_n(64).with_b(16)
}

/// Send-side tap: counts datagrams and records which blocks get Data.
struct SendTap<L> {
    inner: L,
    sends: u64,
    data_blocks: BTreeSet<u16>,
}

impl<L> SendTap<L> {
    fn new(inner: L) -> Self {
        SendTap {
            inner,
            sends: 0,
            data_blocks: BTreeSet::new(),
        }
    }
}

impl<L: Datagram> Datagram for SendTap<L> {
    fn send(&mut self, buf: &[u8]) -> io::Result<()> {
        self.sends += 1;
        if let Some(Packet::Data { block, .. }) = Packet::decode(buf) {
            self.data_blocks.insert(block);
        }
        self.inner.send(buf)
    }
    fn recv(&mut self) -> io::Result<Option<Vec<u8>>> {
        self.inner.recv()
    }
}

/// One clean UDP transfer; returns the report and total datagrams sent
/// on the data path.
fn clean_udp_transfer(payload: &[u8], transfer_id: u64) -> (TransferReport, u64) {
    let (tx, mut rx) = UdpLink::pair_localhost().expect("bind localhost sockets");
    let mut tx = SendTap::new(tx);
    let report = run_transfer(
        &mut tx,
        &mut rx,
        &params(),
        payload,
        transfer_id,
        TransferConfig::default(),
    )
    .expect("UDP loopback transfer failed");
    (report, tx.sends)
}

/// Interrupt a UDP transfer with a permanent blackout near the end of
/// a clean run's send count, searching a small window of cut points
/// for one that strands some blocks mid-decode (a `PartialDelivery`).
/// The UDP path is noiseless, so the clean run's send count is a
/// faithful yardstick.
fn blackout_partial(payload: &[u8], clean_sends: u64, id_base: u64) -> Option<TransferReport> {
    for (trial, cut_back) in (2..=10).enumerate() {
        let start = clean_sends.saturating_sub(cut_back).max(2);
        let (tx, mut rx) = UdpLink::pair_localhost().expect("bind localhost sockets");
        let plan = FaultPlan {
            blackouts: vec![(start, u64::MAX)],
            ..FaultPlan::clean()
        };
        let mut tx = ChaosLink::new(tx, plan, 7);
        let report = run_transfer(
            &mut tx,
            &mut rx,
            &params(),
            payload,
            id_base + trial as u64,
            TransferConfig::default(),
        )
        .expect("UDP loopback transfer failed");
        if matches!(report.outcome, TransferOutcome::PartialDelivery { .. }) {
            return Some(report);
        }
    }
    None
}

/// CI smoke: one clean delivery, one blackout → partial → resume cycle,
/// all over real sockets, bounded and assert-tight.
#[test]
fn udp_blackout_resume_smoke() {
    let payload: Vec<u8> = (0u8..24).map(|i| i.wrapping_mul(41) ^ 0xC3).collect();
    let (clean, clean_sends) = clean_udp_transfer(&payload, 1);
    assert_eq!(
        clean.payload(),
        Some(&payload[..]),
        "clean UDP transfer must deliver bit-exact"
    );
    assert!(clean_sends > 4, "clean run too small to interrupt");

    let partial = blackout_partial(&payload, clean_sends, 100)
        .expect("no blackout cut point produced a partial delivery");
    let salvaged: Vec<u16> = partial
        .salvage()
        .expect("partial delivery carries salvage")
        .iter()
        .enumerate()
        .filter_map(|(i, b)| b.is_some().then_some(i as u16))
        .collect();
    assert!(!salvaged.is_empty(), "partial delivery salvaged nothing");

    // Resume over a fresh socket pair: bit-exact full payload, zero
    // symbols for the blocks the first run already recovered.
    let (tx2, mut rx2) = UdpLink::pair_localhost().expect("bind localhost sockets");
    let mut tx2 = SendTap::new(tx2);
    let resumed = resume_transfer(
        &mut tx2,
        &mut rx2,
        &params(),
        &payload,
        &partial,
        2,
        TransferConfig::default(),
    )
    .expect("UDP resume failed");
    assert_eq!(
        resumed.payload(),
        Some(&payload[..]),
        "resumed UDP transfer must deliver bit-exact"
    );
    assert_eq!(resumed.blocks_resumed, salvaged.len());
    for block in &salvaged {
        assert!(
            !tx2.data_blocks.contains(block),
            "salvaged block {block} must get zero symbols on resume"
        );
    }
    assert!(
        resumed.symbols_sent < partial.symbols_sent + clean.symbols_sent,
        "resume must not cost more than starting over"
    );
}

/// The long soak (ignored by default; `cargo test -- --ignored` or the
/// nightly lane runs it): many seeded transfer cycles over real
/// sockets, a blackout + resume dance every third cycle.
#[test]
#[ignore = "real-socket soak; run explicitly or via the nightly lane"]
fn udp_soak_many_transfer_resume_cycles() {
    let cycles: u64 = std::env::var("UDP_SOAK_CYCLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    let mut resumes = 0u64;
    for cycle in 0..cycles {
        let len = 1 + (cycle.wrapping_mul(0x9E37_79B9) % 60) as usize;
        let payload: Vec<u8> = (0..len)
            .map(|i| (i as u8).wrapping_mul(29).wrapping_add(cycle as u8))
            .collect();
        let (clean, clean_sends) = clean_udp_transfer(&payload, 1000 + cycle * 50);
        assert_eq!(
            clean.payload(),
            Some(&payload[..]),
            "cycle {cycle}: clean UDP transfer must deliver bit-exact"
        );
        if cycle % 3 == 0 && clean_sends > 8 {
            if let Some(partial) = blackout_partial(&payload, clean_sends, 2000 + cycle * 50) {
                let (mut tx, mut rx) = UdpLink::pair_localhost().expect("bind localhost sockets");
                let resumed = resume_transfer(
                    &mut tx,
                    &mut rx,
                    &params(),
                    &payload,
                    &partial,
                    3000 + cycle,
                    TransferConfig::default(),
                )
                .expect("UDP resume failed");
                assert_eq!(
                    resumed.payload(),
                    Some(&payload[..]),
                    "cycle {cycle}: resumed transfer must deliver bit-exact"
                );
                assert!(resumed.blocks_resumed >= 1, "cycle {cycle}");
                resumes += 1;
            }
        }
    }
    println!("udp soak: {cycles} cycles, {resumes} resume round-trips");
    assert!(
        resumes >= 1,
        "soak miscalibrated: no cycle ever exercised resume"
    );
}
