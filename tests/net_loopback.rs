//! End-to-end properties of the `spinal-net` rateless transport over
//! the in-memory loopback link: arbitrary payloads must arrive exactly
//! — through channel noise, datagram loss, duplication and reordering —
//! and the receiver must never acknowledge a block it has not actually
//! decoded to the sender's bytes.

use proptest::prelude::*;
use spinal_codes::net::{
    run_loopback_transfer, Impairments, NoiseModel, Packet, Payload, ReceiverConfig,
    SpinalReceiver, TransferConfig,
};
use spinal_codes::{CodeParams, Complex, Schedule};

fn params() -> CodeParams {
    CodeParams::default().with_n(64).with_b(16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary payloads delivered over a noisy, lossy, reordering,
    /// duplicating link arrive byte-identical. The pass budget is
    /// generous and the SNR comfortable, so non-delivery within it
    /// would be a protocol bug, not channel bad luck.
    #[test]
    fn payloads_survive_adverse_links_exactly(
        data in proptest::collection::vec(any::<u8>(), 0..40),
        loss_pct in 0u32..25,
        dup_pct in 0u32..15,
        reorder_pct in 0u32..25,
        seed in 0u64..1_000,
    ) {
        let impair = Impairments {
            loss: loss_pct as f64 / 100.0,
            dup: dup_pct as f64 / 100.0,
            reorder: reorder_pct as f64 / 100.0,
            reorder_span: 3,
        };
        let cfg = TransferConfig {
            max_passes: 16,
            max_rounds: 200,
            ..TransferConfig::default()
        };
        let report = run_loopback_transfer(
            &params(),
            &data,
            NoiseModel::Awgn { snr_db: 18.0 },
            impair,
            impair, // feedback suffers the same mistreatment
            seed,
            cfg,
        );
        prop_assert_eq!(report.payload(), Some(&data[..]),
            "loss={} dup={} reorder={} seed={}", impair.loss, impair.dup, impair.reorder, seed);
        prop_assert!(report.decode_attempts >= 1);
    }
}

/// Feeding a receiver spans that are pure noise — symbols from no
/// encoder at all — must never produce an ACK: the CRC is the only
/// success signal and it must hold the line.
#[test]
fn garbage_spans_are_never_acked() {
    let p = params();
    let schedule = Schedule::new(p.num_spines(), p.tail, p.puncturing);
    let mut r = SpinalReceiver::new(&p, ReceiverConfig::default());
    r.handle(Packet::Init {
        transfer_id: 1,
        payload_len: 6,
        n_blocks: 1,
        block_bits: p.n as u32,
        resume: vec![],
    });
    // A deterministic junk-symbol generator, nothing like any encoder
    // output.
    let mut state = 0x0123_4567_89AB_CDEFu64;
    let mut junk = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 40) as f64 / 8_388_608.0 * 4.0 - 2.0
    };
    let total = 8 * schedule.symbols_per_pass();
    let mut off = 0u32;
    while (off as usize) < total {
        let count = 9.min(total - off as usize);
        let span: Vec<Complex> = (0..count).map(|_| Complex::new(junk(), junk())).collect();
        r.handle(Packet::Data {
            transfer_id: 1,
            seq: off,
            block: 0,
            offset: off,
            payload: Payload::Symbols(span),
        });
        off += count as u32;
    }
    assert!(r.decode_attempts() >= 1, "attempts must have run");
    assert!(!r.complete(), "garbage must never complete a transfer");
    match r.feedback().expect("transfer is active") {
        Packet::Feedback { decoded, .. } => {
            assert_eq!(decoded, vec![false], "no block may be ACKed")
        }
        other => panic!("unexpected feedback {other:?}"),
    }
    assert_eq!(r.payload(), None);
}

/// The headline rateless property, end to end: the same payload over
/// better channels costs fewer symbols (the transfer's rate adapts),
/// and the delivered bytes are identical in every condition.
#[test]
fn symbols_sent_tracks_channel_quality() {
    let p = params();
    let payload: Vec<u8> = (0u8..48).map(|i| i.wrapping_mul(37) ^ 0x5A).collect();
    let run = |snr_db: f64| {
        run_loopback_transfer(
            &p,
            &payload,
            NoiseModel::Awgn { snr_db },
            Impairments::clean(),
            Impairments::clean(),
            99,
            TransferConfig {
                max_passes: 16,
                max_rounds: 200,
                ..TransferConfig::default()
            },
        )
    };
    let high = run(22.0);
    let mid = run(10.0);
    let low = run(5.0);
    for (name, r) in [("high", &high), ("mid", &mid), ("low", &low)] {
        assert_eq!(
            r.payload(),
            Some(&payload[..]),
            "{name}-SNR transfer must deliver exactly"
        );
    }
    assert!(
        high.symbols_sent <= mid.symbols_sent && mid.symbols_sent < low.symbols_sent,
        "symbols sent must fall as SNR rises: {} / {} / {}",
        high.symbols_sent,
        mid.symbols_sent,
        low.symbols_sent
    );
    assert!(
        high.passes_sent <= low.passes_sent,
        "passes must not grow with SNR"
    );
}
