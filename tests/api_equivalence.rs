//! Pins the API redesign: every legacy decode method must agree
//! bit-for-bit with the [`DecodeRequest`] form that replaces it, for
//! arbitrary messages, noise realisations, metric profiles and resource
//! combinations. The legacy methods are deprecated delegates; this
//! suite is the contract that deprecating them changed nothing.

#![allow(deprecated)]

use proptest::prelude::*;
use spinal_codes::channel::BitChannel;
use spinal_codes::core::{MetricProfile, TableCache};
use spinal_codes::{
    AwgnChannel, BscChannel, BubbleDecoder, Channel, CodeParams, DecodeEngine, DecodeRequest,
    DecodeWorkspace, Encoder, Message, RxBits, RxSymbols, Schedule,
};

fn assert_same(
    a: &spinal_codes::core::DecodeResult,
    b: &spinal_codes::core::DecodeResult,
    what: &str,
) {
    assert_eq!(a.message, b.message, "{what}: message diverged");
    assert_eq!(
        a.cost.to_bits(),
        b.cost.to_bits(),
        "{what}: cost diverged bit-wise"
    );
}

fn setup(seed: u64, profile: MetricProfile) -> (CodeParams, BubbleDecoder, RxSymbols) {
    let params = CodeParams::default().with_n(64).with_b(16);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let msg = Message::random(params.n, || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 56) as u8
    });
    let mut enc = Encoder::new(&params, &msg);
    let schedule = Schedule::new(params.num_spines(), params.tail, params.puncturing);
    let mut rx = RxSymbols::new(schedule);
    let mut ch = AwgnChannel::new(9.0, seed ^ 0xA3A3);
    rx.push(&ch.transmit(&enc.next_symbols(3 * params.symbols_per_pass())));
    let dec = BubbleDecoder::new(&params).with_profile(profile);
    (params, dec, rx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Symbol decodes: plain, workspace, cache, engine, engine+cache —
    /// every legacy form equals its DecodeRequest replacement exactly.
    #[test]
    fn symbol_paths_are_bit_identical(
        seed in 0u64..10_000,
        quantized in any::<bool>(),
        threads in 1usize..3,
    ) {
        let profile = if quantized { MetricProfile::Quantized } else { MetricProfile::Exact };
        let (_, dec, rx) = setup(seed, profile);

        let base = DecodeRequest::new(&dec, &rx).decode();
        assert_same(&dec.decode(&rx), &base, "decode()");

        let mut ws = DecodeWorkspace::new();
        assert_same(
            &dec.decode_with_workspace(&rx, &mut ws),
            &DecodeRequest::new(&dec, &rx).workspace(&mut ws).decode(),
            "decode_with_workspace()",
        );

        let mut legacy_cache = TableCache::new();
        let mut new_cache = TableCache::new();
        // Run the cached pair twice: the first call fills the tables,
        // the second exercises the genuinely incremental path.
        for round in 0..2 {
            let legacy = dec.decode_with_cache(&rx, &mut legacy_cache, &mut ws);
            let req = DecodeRequest::new(&dec, &rx)
                .workspace(&mut ws)
                .cache(&mut new_cache)
                .decode();
            assert_same(&legacy, &req, &format!("decode_with_cache() round {round}"));
            assert_same(&legacy, &base, &format!("cached vs fresh round {round}"));
        }

        let engine = DecodeEngine::new(threads);
        assert_same(
            &engine.decode_parallel(&dec, &rx),
            &DecodeRequest::new(&dec, &rx).engine(&engine).decode(),
            "decode_parallel()",
        );

        let mut legacy_cache = TableCache::new();
        let mut new_cache = TableCache::new();
        assert_same(
            &engine.decode_parallel_cached(&dec, &rx, &mut legacy_cache),
            &DecodeRequest::new(&dec, &rx)
                .engine(&engine)
                .cache(&mut new_cache)
                .decode(),
            "decode_parallel_cached()",
        );
    }

    /// BSC decodes: the bit-observation paths agree the same way.
    #[test]
    fn bit_paths_are_bit_identical(
        seed in 0u64..10_000,
        flip_pm in 0u32..60, // per-mille flip probability
        threads in 1usize..3,
    ) {
        let params = CodeParams::default().with_n(64).with_b(16);
        let mut state = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
        let msg = Message::random(params.n, || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 56) as u8
        });
        let mut enc = Encoder::new(&params, &msg);
        let schedule = Schedule::new(params.num_spines(), params.tail, params.puncturing);
        let mut rx = RxBits::new(schedule);
        let mut ch = BscChannel::new(flip_pm as f64 / 1000.0, seed ^ 0xB5C);
        rx.push(&ch.transmit_bits(&enc.next_bits(6 * params.symbols_per_pass())));
        let dec = BubbleDecoder::new(&params);

        let base = DecodeRequest::new(&dec, &rx).decode();
        assert_same(&dec.decode_bsc(&rx), &base, "decode_bsc()");

        let mut ws = DecodeWorkspace::new();
        assert_same(
            &dec.decode_bsc_with_workspace(&rx, &mut ws),
            &DecodeRequest::new(&dec, &rx).workspace(&mut ws).decode(),
            "decode_bsc_with_workspace()",
        );

        let engine = DecodeEngine::new(threads);
        assert_same(
            &engine.decode_bsc_parallel(&dec, &rx),
            &DecodeRequest::new(&dec, &rx).engine(&engine).decode(),
            "decode_bsc_parallel()",
        );
    }

    /// The batch method equals one DecodeRequest per buffer with a
    /// shared workspace.
    #[test]
    fn batch_equals_mapped_requests(
        seed in 0u64..10_000,
        count in 1usize..4,
    ) {
        let (_, dec, _) = setup(seed, MetricProfile::Exact);
        let rxs: Vec<RxSymbols> = (0..count as u64)
            .map(|i| setup(seed ^ (i + 1), MetricProfile::Exact).2)
            .collect();
        let legacy = dec.decode_batch(&rxs);
        let mut ws = DecodeWorkspace::new();
        let mapped: Vec<_> = rxs
            .iter()
            .map(|rx| DecodeRequest::new(&dec, rx).workspace(&mut ws).decode())
            .collect();
        prop_assert_eq!(legacy.len(), mapped.len());
        for (i, (a, b)) in legacy.iter().zip(&mapped).enumerate() {
            assert_same(a, b, &format!("decode_batch[{i}]"));
        }
    }
}
