//! Property-based tests over the substrate crates (modem, LDPC algebra,
//! hardware selection network, channel math).

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Gray code round-trips and preserves the single-bit-step property.
    #[test]
    fn gray_code_properties(x in 0u32..1_000_000) {
        use spinal_codes::modem::qam::{gray_decode, gray_encode};
        prop_assert_eq!(gray_decode(gray_encode(x)), x);
        prop_assert_eq!((gray_encode(x) ^ gray_encode(x + 1)).count_ones(), 1);
    }

    /// FFT → IFFT is the identity for arbitrary signals.
    #[test]
    fn fft_round_trip(
        values in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..5),
        log_n in 3u32..8,
    ) {
        use spinal_codes::modem::fft::{fft, ifft};
        use spinal_codes::Complex;
        let n = 1usize << log_n;
        let orig: Vec<Complex> = (0..n)
            .map(|i| {
                let (re, im) = values[i % values.len()];
                Complex::new(re + i as f64, im - i as f64)
            })
            .collect();
        let mut x = orig.clone();
        fft(&mut x);
        ifft(&mut x);
        for (a, b) in orig.iter().zip(&x) {
            prop_assert!(a.dist_sq(*b) < 1e-12);
        }
    }

    /// QAM modulate → hard demap round-trips for any bit pattern.
    #[test]
    fn qam_round_trip(bits_val in 0u32..(1 << 8), bps in 1u32..5) {
        use spinal_codes::modem::Qam;
        let q = Qam::new(2 * bps);
        let mask = (1u32 << (2 * bps)) - 1;
        let v = bits_val & mask;
        prop_assert_eq!(q.hard_demap(q.map(v)), v);
    }

    /// GF(2) matrix inverse really inverts, whenever it exists.
    #[test]
    fn gf2_inverse_property(seed in 0u64..5000) {
        use spinal_codes::ldpc::gf2::BitMatrix;
        let n = 12;
        let mut m = BitMatrix::zeros(n, n);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for r in 0..n {
            for c in 0..n {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                m.set(r, c, state >> 62 & 1 == 1);
            }
        }
        if let Some(inv) = m.inverse() {
            prop_assert_eq!(m.multiply(&inv), BitMatrix::identity(n));
            prop_assert_eq!(inv.multiply(&m), BitMatrix::identity(n));
        } else {
            prop_assert!(m.rank() < n);
        }
    }

    /// The bitonic network sorts every input; streamed best-B merging
    /// matches a batch sort.
    #[test]
    fn bitonic_matches_std_sort(
        mut values in proptest::collection::vec(-1000.0f64..1000.0, 1..60),
        b in 1usize..16,
    ) {
        use spinal_codes::hw::{bitonic_sort, merge_best};
        // Network sort (padded).
        let mut padded = values.clone();
        padded.resize(values.len().next_power_of_two(), f64::INFINITY);
        bitonic_sort(&mut padded);
        let mut expect = values.clone();
        expect.sort_by(|a, b| a.total_cmp(b));
        prop_assert_eq!(&padded[..values.len()], &expect[..]);

        // Streaming selection.
        let mut best = Vec::new();
        for chunk in values.chunks(5) {
            merge_best(&mut best, chunk, b);
        }
        let keep = b.min(values.len());
        prop_assert_eq!(&best[..], &expect[..keep]);
        values.clear(); // silence unused-mut lint paths
    }

    /// Capacity inverse round-trips and gap-to-capacity is ≤ 0 for
    /// achievable rates.
    #[test]
    fn capacity_math_properties(snr_db in -10.0f64..40.0, frac in 0.05f64..1.0) {
        use spinal_codes::channel::capacity::{awgn_capacity_db, awgn_snr_for_rate, gap_to_capacity_db};
        let cap = awgn_capacity_db(snr_db);
        let rate = cap * frac;
        let gap = gap_to_capacity_db(rate, snr_db);
        prop_assert!(gap <= 1e-9, "gap {} for rate below capacity", gap);
        // Inverse consistency.
        let snr_needed = awgn_snr_for_rate(rate);
        prop_assert!((awgn_capacity_db(10.0 * snr_needed.log10()) - rate).abs() < 1e-9);
    }

    /// CRC16 is translation-sensitive: appending its own CRC then
    /// re-checking matches the builder's layout assumption.
    #[test]
    fn crc_is_deterministic_and_length_sensitive(data in proptest::collection::vec(any::<u8>(), 0..100)) {
        use spinal_codes::core::framing::crc16;
        prop_assert_eq!(crc16(&data), crc16(&data));
        let mut extended = data.clone();
        extended.push(0);
        // Appending a zero byte must change the CRC (except vanishing chance).
        if !data.is_empty() {
            prop_assert!(crc16(&extended) != crc16(&data) || data.iter().all(|&b| b == 0));
        }
    }

    /// Strider encoder emits unit average power for arbitrary messages.
    #[test]
    fn strider_stream_power(seed in 0u64..200) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use spinal_codes::strider::StriderCode;
        let code = StriderCode::new(240, 6, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let msg: Vec<bool> = (0..240).map(|_| rng.gen()).collect();
        let mut enc = code.encoder(&msg);
        let syms = enc.next_symbols(3 * code.n_sym_per_pass());
        let p: f64 = syms.iter().map(|s| s.norm_sq()).sum::<f64>() / syms.len() as f64;
        prop_assert!((p - 1.0).abs() < 0.25, "power {}", p);
    }
}
