//! Cross-crate integration tests: the full §3–§6 pipeline with real
//! channels, framing, and every decoder variant.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spinal_codes::core::framing::FrameReassembly;
use spinal_codes::{
    AwgnChannel, BubbleDecoder, Channel, CodeParams, DecodeRequest, Encoder, FrameBuilder, Message,
    Puncturing, RxSymbols, Schedule,
};

fn rand_msg(n: usize, seed: u64) -> Message {
    let mut rng = StdRng::seed_from_u64(seed);
    Message::random(n, || rng.gen())
}

/// Stream until decoded; returns symbols used.
fn decode_loop(params: &CodeParams, msg: &Message, snr_db: f64, seed: u64) -> Option<usize> {
    let mut enc = Encoder::new(params, msg);
    let schedule = Schedule::new(params.num_spines(), params.tail, params.puncturing);
    let mut rx = RxSymbols::new(schedule.clone());
    let decoder = BubbleDecoder::new(params);
    let mut ch = AwgnChannel::new(snr_db, seed);
    let mut sent = 0;
    for boundary in schedule.subpass_boundaries(50 * schedule.symbols_per_pass()) {
        let tx = enc.next_symbols(boundary - sent);
        sent = boundary;
        rx.push(&ch.transmit(&tx));
        if DecodeRequest::new(&decoder, &rx).decode().message == *msg {
            return Some(sent);
        }
    }
    None
}

#[test]
fn full_pipeline_decodes_across_snr_range() {
    let params = CodeParams::default().with_n(128);
    for (snr, seed) in [(0.0, 1u64), (10.0, 2), (25.0, 3)] {
        let msg = rand_msg(128, seed);
        let used = decode_loop(&params, &msg, snr, seed).expect("decode failed");
        let rate = 128.0 / used as f64;
        let cap = spinal_codes::channel::capacity::awgn_capacity_db(snr);
        assert!(
            rate <= cap + 1e-9,
            "snr {snr}: rate {rate} above capacity {cap}"
        );
    }
}

#[test]
fn rate_ordering_matches_snr_ordering() {
    let params = CodeParams::default().with_n(128);
    let msg = rand_msg(128, 9);
    let s_low = decode_loop(&params, &msg, 3.0, 11).unwrap();
    let s_high = decode_loop(&params, &msg, 23.0, 11).unwrap();
    assert!(s_high < s_low, "high SNR should need fewer symbols");
}

#[test]
fn framed_datagram_round_trip_with_crc_validation() {
    // No genie anywhere: CRC-16 gates every block, as in §6.
    let params = CodeParams::default().with_n(256);
    let builder = FrameBuilder::new(params.n);
    let mut rng = StdRng::seed_from_u64(77);
    let datagram: Vec<u8> = (0..200).map(|_| rng.gen()).collect();
    let blocks = builder.build(&datagram);
    let schedule = Schedule::new(params.num_spines(), params.tail, params.puncturing);
    let decoder = BubbleDecoder::new(&params);
    let mut re = FrameReassembly::new(builder, 3, blocks.len(), datagram.len());

    for (i, block) in blocks.iter().enumerate() {
        let mut enc = Encoder::new(&params, block);
        let mut rx = RxSymbols::new(schedule.clone());
        let mut ch = AwgnChannel::new(8.0, 500 + i as u64);
        let mut sent = 0;
        for boundary in schedule.subpass_boundaries(50 * schedule.symbols_per_pass()) {
            let tx = enc.next_symbols(boundary - sent);
            sent = boundary;
            rx.push(&ch.transmit(&tx));
            if re.offer(i, &DecodeRequest::new(&decoder, &rx).decode().message) {
                break;
            }
        }
    }
    assert!(re.complete());
    assert_eq!(re.into_datagram().unwrap(), datagram);
}

#[test]
fn all_hash_functions_interoperate() {
    use spinal_codes::HashKind;
    for hash in [HashKind::OneAtATime, HashKind::Lookup3, HashKind::Salsa20] {
        let params = CodeParams::default().with_n(64).with_hash(hash);
        let msg = rand_msg(64, 5);
        assert!(
            decode_loop(&params, &msg, 15.0, 5).is_some(),
            "{hash:?} failed to round-trip"
        );
    }
}

#[test]
fn both_constellation_mappings_work() {
    use spinal_codes::MappingKind;
    for mapping in [
        MappingKind::Uniform,
        MappingKind::TruncatedGaussian { beta: 2.0 },
    ] {
        let params = CodeParams::default().with_n(64).with_mapping(mapping);
        let msg = rand_msg(64, 6);
        assert!(
            decode_loop(&params, &msg, 15.0, 6).is_some(),
            "{mapping:?} failed to round-trip"
        );
    }
}

#[test]
fn every_puncturing_schedule_round_trips() {
    for ways in [1usize, 2, 4, 8] {
        let params = CodeParams::default()
            .with_n(128)
            .with_puncturing(Puncturing::strided(ways));
        let msg = rand_msg(128, 8);
        assert!(
            decode_loop(&params, &msg, 12.0, 8).is_some(),
            "{ways}-way puncturing failed"
        );
    }
}

#[test]
fn mismatched_parameters_fail_decoding() {
    // A decoder with the wrong s0 (scrambler seed) must not recover the
    // message — the streams are unrelated pseudo-noise.
    let tx_params = CodeParams::default().with_n(64);
    let mut rx_params = tx_params.clone();
    rx_params.s0 = 999;
    let msg = rand_msg(64, 10);
    let mut enc = Encoder::new(&tx_params, &msg);
    let schedule = Schedule::new(tx_params.num_spines(), tx_params.tail, tx_params.puncturing);
    let mut rx = RxSymbols::new(schedule.clone());
    let mut ch = AwgnChannel::new(30.0, 10);
    let tx = enc.next_symbols(4 * schedule.symbols_per_pass());
    rx.push(&ch.transmit(&tx));
    let out = DecodeRequest::new(&BubbleDecoder::new(&rx_params), &rx).decode();
    assert_ne!(out.message, msg);
}
