//! Property tests for the decoder workspace/table paths: `decode` and
//! `decode_with_workspace` are the SAME computation (the plain entry
//! points just allocate a throwaway workspace), so their results must be
//! bit-identical — messages and costs — for arbitrary parameters across
//! all three channel families. A second property reuses ONE workspace
//! across every generated case, catching any state leakage between
//! attempts.
//!
//! The legacy entry points exercised here are deprecated delegates of
//! [`spinal_codes::DecodeRequest`]; this file deliberately keeps calling
//! them so the delegate ≡ builder equivalence stays pinned.
#![allow(deprecated)]

use proptest::prelude::*;
use spinal_codes::channel::BitChannel;
use spinal_codes::{
    AwgnChannel, BscChannel, BubbleDecoder, Channel, CodeParams, DecodeWorkspace, Encoder, Message,
    RayleighChannel, RxBits, RxSymbols, Schedule,
};

/// One generated decode scenario: parameters + received buffer.
#[derive(Debug, Clone, Copy)]
struct Scenario {
    k: usize,
    d: usize,
    b: usize,
    /// 0 = AWGN, 1 = BSC, 2 = Rayleigh with CSI.
    chan: u8,
    seed: u64,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (2usize..5, 1usize..4, 0usize..3, 0u8..3, 0u64..1 << 20).prop_map(
        |(k, d, b_pow, chan, seed)| Scenario {
            k,
            d,
            b: 4 << b_pow, // B ∈ {4, 8, 16}
            chan,
            seed,
        },
    )
}

enum Rx {
    Symbols(RxSymbols),
    Bits(RxBits),
}

fn build(sc: &Scenario) -> (CodeParams, Rx) {
    // 20 spine values regardless of k keeps runtime flat and admits d ≤ 3.
    let n = sc.k * 20;
    let params = CodeParams::default()
        .with_n(n)
        .with_k(sc.k)
        .with_b(sc.b)
        .with_d(sc.d);
    let mut rng_state = sc.seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next_byte = move || {
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (rng_state >> 56) as u8
    };
    let msg = Message::random(n, &mut next_byte);
    let mut enc = Encoder::new(&params, &msg);
    let schedule = Schedule::new(params.num_spines(), params.tail, params.puncturing);
    let rx = match sc.chan {
        0 => {
            let mut rx = RxSymbols::new(schedule.clone());
            let mut ch = AwgnChannel::new(10.0, sc.seed ^ 0xA);
            rx.push(&ch.transmit(&enc.next_symbols(2 * schedule.symbols_per_pass())));
            Rx::Symbols(rx)
        }
        1 => {
            let mut rx = RxBits::new(schedule.clone());
            let mut ch = BscChannel::new(0.04, sc.seed ^ 0xB);
            rx.push(&ch.transmit_bits(&enc.next_bits(8 * schedule.symbols_per_pass())));
            Rx::Bits(rx)
        }
        _ => {
            let mut rx = RxSymbols::new(schedule.clone());
            let mut ch = RayleighChannel::new(18.0, 7, sc.seed ^ 0xC);
            let ys = ch.transmit(&enc.next_symbols(3 * schedule.symbols_per_pass()));
            let hs: Vec<_> = (0..ys.len()).map(|i| ch.csi(i).unwrap()).collect();
            rx.push_with_csi(&ys, &hs);
            Rx::Symbols(rx)
        }
    };
    (params, rx)
}

fn decode_both(params: &CodeParams, rx: &Rx, ws: &mut DecodeWorkspace) -> [(Message, u64); 2] {
    let dec = BubbleDecoder::new(params);
    let (plain, reused) = match rx {
        Rx::Symbols(rx) => (dec.decode(rx), dec.decode_with_workspace(rx, ws)),
        Rx::Bits(rx) => (dec.decode_bsc(rx), dec.decode_bsc_with_workspace(rx, ws)),
    };
    [
        (plain.message, plain.cost.to_bits()),
        (reused.message, reused.cost.to_bits()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `decode` ≡ `decode_with_workspace` (message and cost bits) for
    /// arbitrary (k, d, B, channel, seed).
    #[test]
    fn workspace_decode_is_identical(sc in arb_scenario()) {
        let (params, rx) = build(&sc);
        let [(m1, c1), (m2, c2)] = decode_both(&params, &rx, &mut DecodeWorkspace::new());
        prop_assert_eq!(m1, m2);
        prop_assert_eq!(c1, c2);
    }
}

#[test]
fn one_workspace_serves_every_scenario() {
    // The same workspace instance decodes a parade of heterogeneous
    // scenarios (sizes, depths, metric kinds) and must match a fresh
    // workspace each time — no state may leak between attempts.
    let mut ws = DecodeWorkspace::new();
    for seed in 0..12u64 {
        let sc = Scenario {
            k: 2 + (seed % 3) as usize,
            d: 1 + (seed % 3) as usize,
            b: 4 << (seed % 3),
            chan: (seed % 3) as u8,
            seed: seed * 7919,
        };
        let (params, rx) = build(&sc);
        let [(m1, c1), (m2, c2)] = decode_both(&params, &rx, &mut ws);
        assert_eq!(m1, m2, "seed {seed}");
        assert_eq!(c1, c2, "seed {seed}");
    }
}
