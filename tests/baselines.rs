//! Integration tests for the baseline-code substrates, exercised through
//! the facade exactly as the experiment harness uses them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn ldpc_mcs_envelope_is_monotone_staircase() {
    use spinal_codes::ldpc::{Mcs, McsRunner};
    // Each MCS should switch from failing to working as SNR rises, in
    // table order.
    let low = McsRunner::new(Mcs::TABLE[0]);
    let high = McsRunner::new(Mcs::TABLE[7]);
    assert!(low.run_block(6.0, 1));
    assert!(!high.run_block(6.0, 1));
    assert!(high.run_block(24.0, 1));
}

#[test]
fn raptor_code_round_trips_through_qam() {
    use spinal_codes::modem::{Demapper, Qam};
    use spinal_codes::raptor::{RaptorCode, RaptorDecoder};
    use spinal_codes::{AwgnChannel, Channel};

    let k = 600;
    let code = RaptorCode::new(k, 9);
    let mut rng = StdRng::seed_from_u64(4);
    let msg: Vec<bool> = (0..k).map(|_| rng.gen()).collect();
    let inter = code.precode(&msg);
    let n_syms = 260; // 2080 coded bits ≈ 3.3× the intermediate length
    let bits = code.coded_bits(&inter, 0, n_syms * 8);
    let demapper = Demapper::new(Qam::new(8));
    let tx = demapper.qam().modulate(&bits);
    let mut ch = AwgnChannel::new(15.0, 5);
    let rx = ch.transmit(&tx);
    let llrs = demapper.llrs_block(&rx, 1.0 / ch.snr());
    let out = RaptorDecoder::new().decode(&code, &llrs);
    assert_eq!(out.message, msg);
}

#[test]
fn strider_end_to_end_with_plus_attempts() {
    use spinal_codes::sim::{StriderRun, Trial};
    let run = StriderRun::new(1600, 8).plus();
    let t: Trial = run.run_trial(20.0, 2);
    let s = t.symbols.expect("Strider+ should decode at 20 dB");
    // Rate must respect capacity.
    assert!(1600.0 / s as f64 <= 6.66);
}

#[test]
fn spinal_beats_our_strider_at_small_blocks() {
    // The Figure 8-3 headline, at integration-test scale: same message
    // size, same channel, spinal delivers more bits per symbol.
    use spinal_codes::sim::{summarize, SpinalRun, StriderRun, Trial};
    use spinal_codes::CodeParams;
    let n = 1024;
    let snr = 15.0;
    let spinal = SpinalRun::new(CodeParams::default().with_n(n));
    let strider = StriderRun::new(n, 33).plus().with_turbo_iterations(4);
    let sp: Vec<Trial> = (0..2).map(|s| spinal.run_trial(snr, s)).collect();
    let st: Vec<Trial> = (0..2).map(|s| strider.run_trial(snr, s)).collect();
    let sp_rate = summarize(snr, &sp).rate;
    let st_rate = summarize(snr, &st).rate;
    assert!(
        sp_rate > st_rate,
        "spinal {sp_rate} should beat strider {st_rate} at n={n}"
    );
}

#[test]
fn harq_ir_is_rateless_ish_but_worse_than_spinal() {
    use spinal_codes::ldpc::IrHarq;
    use spinal_codes::sim::{summarize, SpinalRun, Trial};
    use spinal_codes::CodeParams;
    let snr = 8.0;
    let harq = IrHarq::new(2, 3);
    let symbols = harq.run_trial(snr, 4).expect("IR-HARQ decodes at 8 dB");
    let harq_rate = harq.k() as f64 / symbols as f64;

    let spinal = SpinalRun::new(CodeParams::default().with_n(256));
    let t: Vec<Trial> = (0..3).map(|s| spinal.run_trial(snr, s)).collect();
    let spinal_rate = summarize(snr, &t).rate;
    assert!(
        spinal_rate > harq_rate,
        "spinal {spinal_rate} vs IR-HARQ {harq_rate} at {snr} dB"
    );
}

#[test]
fn hw_model_agrees_with_software_operating_points() {
    use spinal_codes::hw::{CycleModel, HwConfig};
    use spinal_codes::CodeParams;
    // The FPGA point: B=4 n=192. The ASIC estimate must be faster than
    // FPGA on identical work.
    let p = CodeParams::default().with_n(192).with_c(7).with_b(4);
    let fpga = CycleModel::new(HwConfig::fpga_prototype()).decode_estimate(&p, 4);
    let asic = CycleModel::new(HwConfig::asic_65nm()).decode_estimate(&p, 4);
    assert!(asic.throughput_bps > fpga.throughput_bps);
    assert!(fpga.throughput_bps > 1e6, "FPGA model should exceed 1 Mbps");
}

#[test]
fn uniform_mi_bounds_measured_spinal_rate() {
    // The information-theoretic sandwich at one operating point:
    // spinal rate ≤ MI(uniform constellation) ≤ capacity.
    use spinal_codes::channel::capacity::awgn_capacity_db;
    use spinal_codes::channel::mi::symbol_mi;
    use spinal_codes::core::{Constellation, MappingKind};
    use spinal_codes::sim::{summarize, SpinalRun, Trial};
    use spinal_codes::CodeParams;

    let snr_db = 18.0;
    let snr = 10f64.powf(snr_db / 10.0);
    let levels = Constellation::new(MappingKind::Uniform, 6)
        .levels()
        .to_vec();
    let mi = symbol_mi(&levels, 1.0 / snr, 30_000, 1);
    let cap = awgn_capacity_db(snr_db);

    let run = SpinalRun::new(CodeParams::default().with_n(256));
    let t: Vec<Trial> = (0..3).map(|s| run.run_trial(snr_db, s)).collect();
    let rate = summarize(snr_db, &t).rate;

    assert!(
        rate <= mi + 0.05,
        "rate {rate} exceeds constellation MI {mi}"
    );
    assert!(mi <= cap + 0.05, "MI {mi} exceeds capacity {cap}");
}

#[test]
fn turbo_and_bcjr_compose_through_facade() {
    use spinal_codes::strider::{TurboCode, TurboLlrs};
    let code = TurboCode::new(256, 11);
    let mut rng = StdRng::seed_from_u64(12);
    let bits: Vec<bool> = (0..256).map(|_| rng.gen()).collect();
    let cw = code.encode(&bits);
    let flat: Vec<f64> = cw
        .to_bits()
        .iter()
        .map(|&b| if b { -8.0 } else { 8.0 })
        .collect();
    assert_eq!(code.decode_hard(&TurboLlrs::from_flat(&flat)), bits);
}

#[test]
fn papr_study_pipeline_composes() {
    use spinal_codes::modem::{OfdmConfig, PaprStats, Qam};
    let cfg = OfdmConfig::default();
    let qam = Qam::new(6);
    let mut rng = StdRng::seed_from_u64(13);
    let mut stats = PaprStats::new();
    for _ in 0..500 {
        let data: Vec<_> = (0..48).map(|_| qam.map(rng.gen::<u32>() & 63)).collect();
        stats.record(OfdmConfig::papr_db(&cfg.modulate(&data, rng.gen())));
    }
    let mean = stats.mean_db();
    assert!((6.0..9.0).contains(&mean), "mean PAPR {mean}");
}
