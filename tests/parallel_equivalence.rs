//! Parallel/serial equivalence: the `DecodeEngine` must be an execution
//! strategy, not a different decoder. Every path through it — intra-block
//! sharded decode, the batched block pipeline, and submit/drain — must
//! reproduce `decode_with_workspace` bit for bit (message bytes AND cost
//! bits) at every thread count, for arbitrary `(k, B, d, channel)`
//! scenarios and for the degenerate-observation regression cases from
//! the NaN-safety work (where *every* leaf ties at `+∞` cost and only
//! the canonical total order keeps the winner well-defined).

use proptest::prelude::*;
use spinal_codes::channel::BitChannel;
use spinal_codes::core::MetricProfile;
use spinal_codes::{
    AwgnChannel, BscChannel, BubbleDecoder, Channel, CodeParams, Complex, DecodeEngine,
    DecodeRequest, DecodeWorkspace, Encoder, Message, RayleighChannel, RxBits, RxSymbols, Schedule,
};

/// One generated decode scenario: parameters + received buffer.
#[derive(Debug, Clone, Copy)]
struct Scenario {
    k: usize,
    d: usize,
    b: usize,
    /// 0 = AWGN, 1 = BSC, 2 = Rayleigh with CSI.
    chan: u8,
    /// Index into [`THREAD_COUNTS`].
    threads_idx: usize,
    /// Decode under the quantized integer profile instead of exact.
    quantized: bool,
    seed: u64,
}

/// Budgets under test: serial passthrough, even/odd shard counts, and
/// more workers than the beam has convenient divisors for.
const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        2usize..5,
        1usize..4,
        0usize..3,
        0u8..3,
        0usize..4,
        0u8..2,
        0u64..1 << 20,
    )
        .prop_map(
            |(k, d, b_pow, chan, threads_idx, quant_sel, seed)| Scenario {
                k,
                d,
                b: 4 << b_pow, // B ∈ {4, 8, 16}
                chan,
                threads_idx,
                quantized: quant_sel == 1,
                seed,
            },
        )
}

enum Rx {
    Symbols(RxSymbols),
    Bits(RxBits),
}

fn build(sc: &Scenario) -> (CodeParams, Rx) {
    // 20 spine values regardless of k keeps runtime flat and admits d ≤ 3.
    let n = sc.k * 20;
    let params = CodeParams::default()
        .with_n(n)
        .with_k(sc.k)
        .with_b(sc.b)
        .with_d(sc.d);
    let mut rng_state = sc.seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next_byte = move || {
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (rng_state >> 56) as u8
    };
    let msg = Message::random(n, &mut next_byte);
    let mut enc = Encoder::new(&params, &msg);
    let schedule = Schedule::new(params.num_spines(), params.tail, params.puncturing);
    let rx = match sc.chan {
        0 => {
            let mut rx = RxSymbols::new(schedule.clone());
            let mut ch = AwgnChannel::new(10.0, sc.seed ^ 0xA);
            rx.push(&ch.transmit(&enc.next_symbols(2 * schedule.symbols_per_pass())));
            Rx::Symbols(rx)
        }
        1 => {
            let mut rx = RxBits::new(schedule.clone());
            let mut ch = BscChannel::new(0.04, sc.seed ^ 0xB);
            rx.push(&ch.transmit_bits(&enc.next_bits(8 * schedule.symbols_per_pass())));
            Rx::Bits(rx)
        }
        _ => {
            let mut rx = RxSymbols::new(schedule.clone());
            let mut ch = RayleighChannel::new(18.0, 7, sc.seed ^ 0xC);
            let ys = ch.transmit(&enc.next_symbols(3 * schedule.symbols_per_pass()));
            let hs: Vec<_> = (0..ys.len()).map(|i| ch.csi(i).unwrap()).collect();
            rx.push_with_csi(&ys, &hs);
            Rx::Symbols(rx)
        }
    };
    (params, rx)
}

fn assert_bitwise_equal(
    serial: &spinal_codes::core::DecodeResult,
    parallel: &spinal_codes::core::DecodeResult,
    context: &str,
) {
    assert_eq!(serial.message, parallel.message, "{context}: message");
    assert_eq!(
        serial.cost.to_bits(),
        parallel.cost.to_bits(),
        "{context}: cost bits"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Engine decode ≡ serial decode for arbitrary (k, d, B, channel,
    /// threads, seed), over both metric kinds AND both metric profiles
    /// (the quantized integer path must be exactly as deterministic
    /// under sharding as the exact one).
    #[test]
    fn engine_decode_is_bit_identical_to_serial(sc in arb_scenario()) {
        let (params, rx) = build(&sc);
        let threads = THREAD_COUNTS[sc.threads_idx];
        let engine = DecodeEngine::new(threads);
        let profile = if sc.quantized {
            MetricProfile::Quantized
        } else {
            MetricProfile::Exact
        };
        let dec = BubbleDecoder::new(&params).with_profile(profile);
        match &rx {
            Rx::Symbols(rx) => {
                let serial = DecodeRequest::new(&dec, rx).decode();
                let parallel = DecodeRequest::new(&dec, rx).engine(&engine).decode();
                assert_bitwise_equal(&serial, &parallel, &format!("{sc:?}"));
            }
            Rx::Bits(rx) => {
                let serial = DecodeRequest::new(&dec, rx).decode();
                let parallel = DecodeRequest::new(&dec, rx).engine(&engine).decode();
                assert_bitwise_equal(&serial, &parallel, &format!("{sc:?}"));
            }
        }
    }
}

#[test]
fn one_engine_decodes_a_parade_of_scenarios_identically() {
    // A single long-lived engine per thread count serves heterogeneous
    // codes and metrics back to back (the sweep deployment shape); no
    // state may leak between decodes.
    for &threads in &THREAD_COUNTS {
        let engine = DecodeEngine::new(threads);
        for seed in 0..10u64 {
            let sc = Scenario {
                k: 2 + (seed % 3) as usize,
                d: 1 + (seed % 3) as usize,
                b: 4 << (seed % 3),
                chan: (seed % 3) as u8,
                threads_idx: 0,
                quantized: seed % 2 == 1,
                seed: seed * 77 + 5,
            };
            let (params, rx) = build(&sc);
            let profile = if sc.quantized {
                MetricProfile::Quantized
            } else {
                MetricProfile::Exact
            };
            let dec = BubbleDecoder::new(&params).with_profile(profile);
            match &rx {
                Rx::Symbols(rx) => assert_bitwise_equal(
                    &DecodeRequest::new(&dec, rx).decode(),
                    &DecodeRequest::new(&dec, rx).engine(&engine).decode(),
                    &format!("threads {threads} seed {seed}"),
                ),
                Rx::Bits(rx) => assert_bitwise_equal(
                    &DecodeRequest::new(&dec, rx).decode(),
                    &DecodeRequest::new(&dec, rx).engine(&engine).decode(),
                    &format!("threads {threads} seed {seed}"),
                ),
            }
        }
    }
}

#[test]
fn batch_and_submit_drain_match_serial_batch() {
    let params = CodeParams::default().with_n(96).with_b(32);
    let schedule = Schedule::new(params.num_spines(), params.tail, params.puncturing);
    let rxs: Vec<RxSymbols> = (0..9u64)
        .map(|seed| {
            let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let msg = Message::random(96, move || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (s >> 56) as u8
            });
            let mut enc = Encoder::new(&params, &msg);
            let mut rx = RxSymbols::new(schedule.clone());
            let mut ch = AwgnChannel::new(8.0, seed + 31);
            rx.push(&ch.transmit(&enc.next_symbols(2 * schedule.symbols_per_pass())));
            rx
        })
        .collect();
    let dec = BubbleDecoder::new(&params);
    let mut ws = DecodeWorkspace::new();
    let serial: Vec<_> = rxs
        .iter()
        .map(|rx| DecodeRequest::new(&dec, rx).workspace(&mut ws).decode())
        .collect();
    for &threads in &THREAD_COUNTS {
        let engine = DecodeEngine::new(threads);
        let batch = engine.decode_batch_parallel(&dec, &rxs);
        assert_eq!(batch.len(), serial.len());
        for (s, p) in serial.iter().zip(&batch) {
            assert_bitwise_equal(s, p, &format!("batch threads {threads}"));
        }
        for rx in &rxs {
            engine.submit(&dec, rx);
        }
        let drained = engine.drain();
        assert_eq!(drained.len(), serial.len());
        for (s, p) in serial.iter().zip(&drained) {
            let p = p.as_ref().expect("clean submit decodes");
            assert_bitwise_equal(s, p, &format!("submit/drain threads {threads}"));
        }
    }
}

#[test]
fn degenerate_csi_ties_resolve_identically_at_every_thread_count() {
    // The ∞-CSI regression from the NaN-safety work: one broken
    // observation makes EVERY candidate cost +∞, so the winner is
    // decided purely by tie-breaking. The canonical (cost, tree, path)
    // order must make serial and all parallel decodes agree exactly.
    let params = CodeParams::default().with_n(64).with_b(8);
    let mut s = 0x1234_5678_9abc_def1u64;
    let msg = Message::random(64, move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        (s >> 56) as u8
    });
    let mut enc = Encoder::new(&params, &msg);
    let schedule = Schedule::new(params.num_spines(), params.tail, params.puncturing);
    let mut rx = RxSymbols::new(schedule);
    let tx = enc.next_symbols(2 * params.symbols_per_pass());
    let hs: Vec<Complex> = (0..tx.len())
        .map(|i| {
            if i == 5 {
                Complex::new(f64::INFINITY, 0.0)
            } else {
                Complex::ONE
            }
        })
        .collect();
    rx.push_with_csi(&tx, &hs);
    for profile in [MetricProfile::Exact, MetricProfile::Quantized] {
        let dec = BubbleDecoder::new(&params).with_profile(profile);
        let serial = DecodeRequest::new(&dec, &rx).decode();
        assert!(
            serial.cost.is_infinite() && serial.cost > 0.0,
            "{profile:?}"
        );
        for &threads in &THREAD_COUNTS {
            let engine = DecodeEngine::new(threads);
            let parallel = DecodeRequest::new(&dec, &rx).engine(&engine).decode();
            assert_bitwise_equal(
                &serial,
                &parallel,
                &format!("inf-CSI {profile:?} threads {threads}"),
            );
        }
    }
}

#[test]
fn all_nan_observations_resolve_identically_at_every_thread_count() {
    // Every observation broken: every table entry clamps to +∞ and the
    // whole search is one big tie. Serial and parallel must still pick
    // the same (garbage) message and +∞ cost.
    let params = CodeParams::default().with_n(64).with_b(4);
    let schedule = Schedule::new(params.num_spines(), params.tail, params.puncturing);
    let mut rx = RxSymbols::new(schedule);
    let nan = Complex::new(f64::NAN, f64::NAN);
    rx.push(&vec![nan; 2 * params.symbols_per_pass()]);
    for profile in [MetricProfile::Exact, MetricProfile::Quantized] {
        let dec = BubbleDecoder::new(&params).with_profile(profile);
        let serial = DecodeRequest::new(&dec, &rx).decode();
        assert!(serial.cost.is_infinite(), "{profile:?}");
        for &threads in &THREAD_COUNTS {
            let engine = DecodeEngine::new(threads);
            let parallel = DecodeRequest::new(&dec, &rx).engine(&engine).decode();
            assert_bitwise_equal(
                &serial,
                &parallel,
                &format!("all-NaN {profile:?} threads {threads}"),
            );
        }
    }
}
