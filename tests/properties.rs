//! Property-based tests (proptest) on the invariants the paper's
//! construction depends on.

use proptest::prelude::*;
use spinal_codes::core::spine::compute_spine;
use spinal_codes::{CodeParams, Encoder, Message, Puncturing, Schedule};

fn arb_message(n: usize) -> impl Strategy<Value = Message> {
    proptest::collection::vec(any::<bool>(), n).prop_map(|bits| Message::from_bits(&bits))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// §1: the coded stream at a higher rate is a prefix of the stream at
    /// every lower rate, for arbitrary messages and chunkings.
    #[test]
    fn prefix_property_holds_for_any_chunking(
        msg in arb_message(64),
        cut in 1usize..299,
    ) {
        let params = CodeParams::default().with_n(64);
        let mut one = Encoder::new(&params, &msg);
        let mut two = Encoder::new(&params, &msg);
        let whole = one.next_symbols(300);
        let mut parts = two.next_symbols(cut);
        parts.extend(two.next_symbols(300 - cut));
        prop_assert_eq!(whole, parts);
    }

    /// §3.1: messages sharing a j·k-bit prefix share exactly the first j
    /// spine values, and (whp) no later ones.
    #[test]
    fn spine_divergence_is_exactly_at_first_differing_group(
        bits in proptest::collection::vec(any::<bool>(), 64),
        flip in 0usize..64,
    ) {
        let params = CodeParams::default().with_n(64);
        let a = Message::from_bits(&bits);
        let mut bits2 = bits.clone();
        bits2[flip] = !bits2[flip];
        let b = Message::from_bits(&bits2);
        let sa = compute_spine(&params, &a);
        let sb = compute_spine(&params, &b);
        let group = flip / params.k;
        prop_assert_eq!(&sa[..group], &sb[..group]);
        // The hash chain diverges at the flip and (whp, ν=32) never
        // re-merges within the block.
        for i in group..sa.len() {
            prop_assert_ne!(sa[i], sb[i], "spine {} re-merged", i);
        }
    }

    /// Message bit accessors are self-consistent for arbitrary content.
    #[test]
    fn message_get_set_round_trip(
        bits in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let msg = Message::from_bits(&bits);
        prop_assert_eq!(msg.len_bits(), bits.len());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(msg.bit(i), b);
        }
        prop_assert_eq!(msg.to_bits(), bits);
    }

    /// The schedule is a valid rateless order for any puncturing: within
    /// any prefix, each spine's RNG indices are 0,1,2,… without gaps.
    #[test]
    fn schedule_rng_indices_are_gapless(
        ways_pow in 0u32..4,
        n_spines in 1usize..80,
        tail in 0usize..4,
        take in 1usize..600,
    ) {
        let schedule = Schedule::new(n_spines, tail, Puncturing::strided(1 << ways_pow));
        let mut counters = vec![0u32; n_spines];
        for pos in schedule.generate(take) {
            prop_assert_eq!(pos.rng_index, counters[pos.spine]);
            counters[pos.spine] += 1;
        }
    }

    /// One full pass covers every spine value at least once, under every
    /// puncturing mode.
    #[test]
    fn one_pass_covers_all_spines(
        ways_pow in 0u32..4,
        n_spines in 1usize..64,
    ) {
        let schedule = Schedule::new(n_spines, 1, Puncturing::strided(1 << ways_pow));
        let mut seen = vec![false; n_spines];
        for pos in schedule.generate(schedule.symbols_per_pass()) {
            seen[pos.spine] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// CRC-16 framing validates exactly the blocks it built, and rejects
    /// any single-bit corruption.
    #[test]
    fn framing_round_trip_and_corruption(
        data in proptest::collection::vec(any::<u8>(), 0..300),
        flip_bit in 0usize..256,
    ) {
        use spinal_codes::FrameBuilder;
        let fb = FrameBuilder::new(256);
        let blocks = fb.build(&data);
        for b in &blocks {
            prop_assert!(fb.validate(b).is_some());
            let mut corrupted = b.clone();
            corrupted.set_bit(flip_bit, !corrupted.bit(flip_bit));
            prop_assert!(fb.validate(&corrupted).is_none());
        }
        // Reassembled payload prefix equals the datagram.
        let payload_bytes: Vec<u8> = blocks
            .iter()
            .flat_map(|b| fb.validate(b).unwrap().to_vec())
            .collect();
        prop_assert_eq!(&payload_bytes[..data.len()], &data[..]);
    }

    /// Encoder symbol power stays near unity for random messages (the
    /// SNR convention every experiment relies on).
    #[test]
    fn stream_power_is_normalised(msg in arb_message(64)) {
        let params = CodeParams::default().with_n(64);
        let mut enc = Encoder::new(&params, &msg);
        let syms = enc.next_symbols(2000);
        let p: f64 = syms.iter().map(|s| s.norm_sq()).sum::<f64>() / syms.len() as f64;
        prop_assert!((p - 1.0).abs() < 0.1, "power {}", p);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Noiseless round-trip decodes for arbitrary messages and every
    /// bubble depth (cases kept low: each runs a full decode).
    #[test]
    fn noiseless_roundtrip_any_message_any_depth(
        msg in arb_message(60),
        d in 1usize..4,
    ) {
        use spinal_codes::{BubbleDecoder, RxSymbols};
        let params = CodeParams::default().with_n(60).with_k(3).with_b(8).with_d(d);
        let mut enc = Encoder::new(&params, &msg);
        let schedule = Schedule::new(params.num_spines(), params.tail, params.puncturing);
        let mut rx = RxSymbols::new(schedule.clone());
        rx.push(&enc.next_symbols(2 * schedule.symbols_per_pass()));
        let out = spinal_codes::DecodeRequest::new(&BubbleDecoder::new(&params), &rx).decode();
        prop_assert_eq!(out.message, msg);
    }
}
