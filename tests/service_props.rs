//! Property tests for the many-session decode service: for arbitrary
//! (code, channel, session count, thread budget, queue capacity,
//! scheduling policy) the service must
//!
//! * return every session's decode **bit-identical** to the serial
//!   decode of the same buffer, at every thread count;
//! * report admission shed **exactly once** per rejected open, and
//!   admit again as soon as a slot frees;
//! * exert backpressure through `Err(QueueFull)` — a structured,
//!   prompt refusal — never by blocking the caller (a deadlock here
//!   hangs the test; proptest's timeout is the detector);
//! * keep its books balanced: completions = submits, nothing stale,
//!   nothing lost, after every session reaches a terminal state.

use proptest::prelude::*;
use spinal_codes::channel::BitChannel;
use spinal_codes::core::{DecodeRequest, DecodeResult};
use spinal_codes::{
    AwgnChannel, BscChannel, BubbleDecoder, Channel, CodeParams, DecodeService, Encoder, Message,
    RxBits, RxSymbols, Schedule, SchedulePolicy, ServiceConfig, Session, SessionBuffer,
    SessionOptions,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One generated service workload.
#[derive(Debug, Clone, Copy)]
struct Scenario {
    /// Engine thread budget (1 = inline, >1 = pooled).
    threads: usize,
    /// Sessions opened concurrently.
    sessions: usize,
    /// Attempts (submit/wait rounds) per session.
    attempts: usize,
    /// 0 = AWGN symbols, 1 = BSC bits.
    chan: u8,
    policy_idx: usize,
    seed: u64,
}

const POLICIES: [SchedulePolicy; 3] = [
    SchedulePolicy::Fifo,
    SchedulePolicy::OldestDeadlineFirst,
    SchedulePolicy::CostSoFar,
];

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        1usize..4,
        1usize..5,
        1usize..4,
        0u8..2,
        0usize..3,
        0u64..1 << 20,
    )
        .prop_map(
            |(threads, sessions, attempts, chan, policy_idx, seed)| Scenario {
                threads,
                sessions,
                attempts,
                chan,
                policy_idx,
                seed,
            },
        )
}

/// Sender-side state for one generated session, able to extend the
/// rateless stream attempt by attempt.
struct Feed {
    encoder: Encoder,
    awgn: Option<AwgnChannel>,
    bsc: Option<BscChannel>,
}

impl Feed {
    fn next_chunk(&mut self, symbols: usize) -> Chunk {
        match (&mut self.awgn, &mut self.bsc) {
            (Some(ch), _) => Chunk::Symbols(ch.transmit(&self.encoder.next_symbols(symbols))),
            (_, Some(ch)) => Chunk::Bits(ch.transmit_bits(&self.encoder.next_bits(8 * symbols))),
            _ => unreachable!("one channel is always set"),
        }
    }
}

enum Chunk {
    Symbols(Vec<spinal_codes::Complex>),
    Bits(Vec<bool>),
}

fn push_chunk(buf: &mut SessionBuffer, chunk: &Chunk) {
    match (buf, chunk) {
        (SessionBuffer::Symbols(rx), Chunk::Symbols(ys)) => rx.push(ys),
        (SessionBuffer::Bits(rx), Chunk::Bits(bs)) => rx.push(bs),
        _ => unreachable!("chunk kind always matches the buffer kind"),
    }
}

/// Build session `i` of a scenario: its initial buffer, a mirror copy
/// for the serial reference, and the feed for later attempts.
fn build_session(p: &CodeParams, sc: &Scenario, i: usize) -> (SessionBuffer, SessionBuffer, Feed) {
    let seed = sc.seed ^ (i as u64).wrapping_mul(0x9E37_79B9);
    let mut s = seed.wrapping_mul(6364136223846793005) | 1;
    let msg = Message::random(p.n, move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        (s >> 56) as u8
    });
    let encoder = Encoder::new(p, &msg);
    let schedule = Schedule::new(p.num_spines(), p.tail, p.puncturing);
    let mut feed = Feed {
        encoder,
        awgn: (sc.chan == 0).then(|| AwgnChannel::new(8.0, seed ^ 0xA)),
        bsc: (sc.chan == 1).then(|| BscChannel::new(0.04, seed ^ 0xB)),
    };
    let chunk = feed.next_chunk(2 * p.symbols_per_pass());
    let (mut buf, mut mirror) = match sc.chan {
        0 => (
            SessionBuffer::Symbols(RxSymbols::new(schedule.clone())),
            SessionBuffer::Symbols(RxSymbols::new(schedule)),
        ),
        _ => (
            SessionBuffer::Bits(RxBits::new(schedule.clone())),
            SessionBuffer::Bits(RxBits::new(schedule)),
        ),
    };
    push_chunk(&mut buf, &chunk);
    push_chunk(&mut mirror, &chunk);
    (buf, mirror, feed)
}

/// Serial reference decode of a mirror buffer (fresh workspace, no
/// cache — the session's cached incremental path must match it bit for
/// bit anyway).
fn serial_decode(dec: &BubbleDecoder, buf: &SessionBuffer) -> DecodeResult {
    match buf {
        SessionBuffer::Symbols(rx) => DecodeRequest::new(dec, rx).decode(),
        SessionBuffer::Bits(rx) => DecodeRequest::new(dec, rx).decode(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The flagship property: interleaved multi-session, multi-attempt
    /// service decodes are bit-identical to serial decodes of the same
    /// buffers, under every policy and thread budget, with balanced
    /// accounting at the end.
    #[test]
    fn service_decodes_are_bit_identical_to_serial(sc in arb_scenario()) {
        let p = CodeParams::default().with_n(32).with_b(4);
        let dec = Arc::new(BubbleDecoder::new(&p));
        let svc = DecodeService::new(sc.threads, ServiceConfig {
            policy: POLICIES[sc.policy_idx],
            ..ServiceConfig::default()
        });
        let mut sessions: Vec<(Session, SessionBuffer, Feed)> = (0..sc.sessions)
            .map(|i| {
                let (buf, mirror, feed) = build_session(&p, &sc, i);
                let opts = SessionOptions {
                    deadline: i as u64,
                    ..SessionOptions::default()
                };
                let session = svc.open_session(&dec, buf, opts).expect("admission");
                (session, mirror, feed)
            })
            .collect();
        for attempt in 0..sc.attempts {
            // Submit every session's attempt before waiting on any —
            // with a pooled engine the decodes genuinely overlap.
            for (session, _, _) in &mut sessions {
                session.submit().expect("queue sized for the workload");
            }
            for (i, (session, mirror, feed)) in sessions.iter_mut().enumerate() {
                let got = session.wait().expect("attempt in flight").expect("clean decode");
                let want = serial_decode(&dec, mirror);
                prop_assert_eq!(&got.message, &want.message,
                    "session {} attempt {} ({:?})", i, attempt, sc);
                prop_assert_eq!(got.cost.to_bits(), want.cost.to_bits(),
                    "session {} attempt {} cost bits ({:?})", i, attempt, sc);
                if attempt + 1 < sc.attempts {
                    let chunk = feed.next_chunk(p.symbols_per_pass());
                    push_chunk(session.buffer_mut().expect("buffer home"), &chunk);
                    push_chunk(mirror, &chunk);
                }
            }
        }
        drop(sessions);
        let m = svc.metrics();
        prop_assert_eq!(m.submits, (sc.sessions * sc.attempts) as u64);
        prop_assert_eq!(m.completions, m.submits, "lost or duplicated completions");
        prop_assert_eq!(m.stale_completions, 0u64);
        prop_assert_eq!(m.sessions_shed, 0u64);
        // Nothing in this workload cancels, expires, or quarantines —
        // the hardened-lifecycle counters must stay silent.
        prop_assert_eq!(m.attempts_cancelled, 0u64);
        prop_assert_eq!(m.attempts_deadline_expired, 0u64);
        prop_assert_eq!(m.deadline_misses, 0u64);
        prop_assert_eq!(m.sessions_quarantined, 0u64);
        prop_assert_eq!(svc.active_sessions(), 0);
    }

    /// Admission control: overflow opens are refused with a structured
    /// error, counted as shed exactly once each, and a freed slot is
    /// immediately reusable.
    #[test]
    fn shed_is_reported_exactly_once(sc in arb_scenario()) {
        let p = CodeParams::default().with_n(32).with_b(4);
        let dec = Arc::new(BubbleDecoder::new(&p));
        let svc = DecodeService::new(1, ServiceConfig {
            max_sessions: sc.sessions,
            policy: POLICIES[sc.policy_idx],
            ..ServiceConfig::default()
        });
        let mut held: Vec<Session> = (0..sc.sessions)
            .map(|i| {
                let (buf, _, _) = build_session(&p, &sc, i);
                svc.open_session(&dec, buf, SessionOptions::default()).expect("under limit")
            })
            .collect();
        let extra = sc.attempts; // reuse as the overflow count, ≥ 1
        for i in 0..extra {
            let (buf, _, _) = build_session(&p, &sc, sc.sessions + i);
            let err = svc.open_session(&dec, buf, SessionOptions::default());
            prop_assert!(err.is_err(), "open {} past the limit admitted", i);
        }
        prop_assert_eq!(svc.metrics().sessions_shed, extra as u64, "shed miscounted");
        // Freeing one slot re-admits exactly one session.
        held.pop();
        let (buf, _, _) = build_session(&p, &sc, 999);
        let readmitted = svc.open_session(&dec, buf, SessionOptions::default());
        prop_assert!(readmitted.is_ok(), "freed slot not reusable");
        prop_assert_eq!(svc.metrics().sessions_shed, extra as u64,
            "successful open changed the shed count");
    }

    /// Backpressure under real contention: a one-slot queue and a
    /// one-job inflight cap force `QueueFull` refusals whenever the
    /// pool lags the submitter. Refusals must be prompt and structured
    /// (never blocking), side-effect-free (the session retries later
    /// and decodes correctly), counted exactly, and the retry loop must
    /// always make progress — a wedge hangs the case, a livelock trips
    /// the stuck-round assertion.
    #[test]
    fn backpressure_refuses_promptly_and_never_deadlocks(sc in arb_scenario()) {
        let p = CodeParams::default().with_n(32).with_b(4);
        let dec = Arc::new(BubbleDecoder::new(&p));
        let svc = DecodeService::new(sc.threads, ServiceConfig {
            queue_capacity: 1,
            max_inflight: 1,
            policy: POLICIES[sc.policy_idx],
            ..ServiceConfig::default()
        });
        let mut sessions: Vec<(Option<Session>, SessionBuffer)> = (0..sc.sessions)
            .map(|i| {
                let (buf, mirror, _) = build_session(&p, &sc, i);
                let session = svc
                    .open_session(&dec, buf, SessionOptions::default())
                    .expect("admission");
                (Some(session), mirror)
            })
            .collect();
        let mut refused = 0u64;
        let mut in_flight: Vec<usize> = Vec::new();
        let mut submitted = vec![false; sc.sessions];
        let mut results: Vec<Option<DecodeResult>> = vec![None; sc.sessions];
        while results.iter().any(Option::is_none) {
            let mut progressed = false;
            for i in 0..sc.sessions {
                if submitted[i] {
                    continue;
                }
                match sessions[i].0.as_mut().expect("open").submit() {
                    Ok(()) => {
                        submitted[i] = true;
                        in_flight.push(i);
                        progressed = true;
                    }
                    Err(spinal_codes::SubmitError::QueueFull { capacity, .. }) => {
                        prop_assert_eq!(capacity, 1);
                        refused += 1;
                    }
                    Err(e) => prop_assert!(false, "fresh session refused with {:?}", e),
                }
            }
            // Drain one completion per round; if nothing submitted AND
            // nothing is in flight, backpressure has livelocked.
            if let Some(i) = (!in_flight.is_empty()).then(|| in_flight.remove(0)) {
                results[i] = sessions[i].0.as_mut().expect("open").wait()
                    .map(|r| r.expect("clean decode"));
                prop_assert!(results[i].is_some(), "in-flight session {} had no result", i);
                progressed = true;
            }
            prop_assert!(progressed, "no submit accepted and nothing in flight: wedged");
        }
        for (i, (got, (_, mirror))) in results.iter().zip(&sessions).enumerate() {
            let got = got.as_ref().expect("loop exit condition");
            let want = serial_decode(&dec, mirror);
            prop_assert_eq!(&got.message, &want.message, "session {} ({:?})", i, sc);
            prop_assert_eq!(got.cost.to_bits(), want.cost.to_bits(), "session {}", i);
        }
        drop(sessions);
        let m = svc.metrics();
        prop_assert_eq!(m.submits, sc.sessions as u64, "each session decodes once");
        prop_assert_eq!(m.submits_rejected, refused, "refusals miscounted");
        prop_assert_eq!(m.completions, m.submits, "a refused submit leaked a job");
        prop_assert_eq!(m.stale_completions, 0u64);
    }

    /// Hardened lifecycle: expired wall deadlines and caller cancels
    /// resolve the attempt *without* a result, hand the buffer back,
    /// and the books still balance exactly —
    /// `submits == completions + attempts_cancelled + attempts_deadline_expired`.
    #[test]
    fn cancelled_and_expired_attempts_balance_the_books(sc in arb_scenario()) {
        let p = CodeParams::default().with_n(32).with_b(4);
        let dec = Arc::new(BubbleDecoder::new(&p));
        let svc = DecodeService::new(sc.threads, ServiceConfig {
            policy: POLICIES[sc.policy_idx],
            ..ServiceConfig::default()
        });
        let mut expired_n = 0u64;
        let mut cancels_won = 0u64;
        for i in 0..sc.sessions {
            let (buf, mirror, _) = build_session(&p, &sc, i);
            let expired = i % 2 == 0;
            let opts = SessionOptions {
                // An already-elapsed wall deadline: the dispatcher must
                // drop the attempt before it ever runs.
                wall_deadline: expired.then(Instant::now),
                ..SessionOptions::default()
            };
            let mut session = svc.open_session(&dec, buf, opts).expect("admission");
            session.submit().expect("queue sized for the workload");
            if expired {
                expired_n += 1;
                // wait_timeout distinguishes "resolved without result"
                // (buffer home) from a genuine timeout (buffer absent).
                let got = session.wait_timeout(Duration::from_secs(30));
                prop_assert!(got.is_none(), "expired attempt {} produced a result", i);
                prop_assert!(session.buffer().is_some(),
                    "expired attempt {} did not return the buffer", i);
            } else if session.cancel() {
                // The cancel won the race against the worker: no result,
                // buffer handed back, counted as cancelled.
                cancels_won += 1;
                prop_assert!(session.wait().is_none(), "cancelled attempt {} resolved", i);
                prop_assert!(session.buffer().is_some(),
                    "cancelled attempt {} did not return the buffer", i);
            } else {
                // The worker won: the result must still be bit-identical
                // to the serial reference.
                let got = session.wait().expect("uncancelled attempt lost")
                    .expect("clean decode");
                let want = serial_decode(&dec, &mirror);
                prop_assert_eq!(&got.message, &want.message, "session {} ({:?})", i, sc);
            }
        }
        let m = svc.metrics();
        prop_assert_eq!(m.submits, sc.sessions as u64);
        prop_assert_eq!(m.attempts_deadline_expired, expired_n, "expiry miscounted");
        prop_assert_eq!(m.attempts_cancelled, cancels_won, "cancels miscounted");
        prop_assert_eq!(
            m.completions + m.attempts_cancelled + m.attempts_deadline_expired,
            m.submits,
            "an attempt vanished without a terminal accounting state ({:?})", sc
        );
        prop_assert_eq!(m.stale_completions, 0u64);
        prop_assert_eq!(m.deadline_misses, 0u64, "a dropped attempt cannot also miss");
    }

    /// Quarantine: crossing the consecutive-failure threshold refuses
    /// further submits with a structured error (counted once per
    /// crossing), and `mark_ok` restores service with decodes still
    /// bit-identical to serial.
    #[test]
    fn quarantine_gates_submits_until_marked_healthy(sc in arb_scenario()) {
        let p = CodeParams::default().with_n(32).with_b(4);
        let dec = Arc::new(BubbleDecoder::new(&p));
        let threshold = sc.attempts as u32; // 1..4
        let svc = DecodeService::new(sc.threads, ServiceConfig {
            quarantine_after: threshold,
            policy: POLICIES[sc.policy_idx],
            ..ServiceConfig::default()
        });
        let (buf, mirror, _) = build_session(&p, &sc, 0);
        let mut session = svc
            .open_session(&dec, buf, SessionOptions::default())
            .expect("admission");
        for k in 1..=threshold {
            prop_assert_eq!(session.mark_failed(), k);
        }
        prop_assert!(session.quarantined());
        match session.submit() {
            Err(spinal_codes::SubmitError::Quarantined { failures }) => {
                prop_assert_eq!(failures, threshold);
            }
            other => prop_assert!(false, "quarantined submit returned {:?}", other),
        }
        session.mark_ok();
        prop_assert!(!session.quarantined());
        session.submit().expect("healthy session refused");
        let got = session.wait().expect("attempt in flight").expect("clean decode");
        let want = serial_decode(&dec, &mirror);
        prop_assert_eq!(&got.message, &want.message, "post-quarantine decode ({:?})", sc);
        // A second crossing counts again — the counter tracks events,
        // not a high-water mark.
        for _ in 0..threshold {
            session.mark_failed();
        }
        drop(session);
        let m = svc.metrics();
        prop_assert_eq!(m.sessions_quarantined, 2u64, "crossings miscounted");
        prop_assert_eq!(m.submits_rejected, 1u64, "quarantine refusal miscounted");
        prop_assert_eq!(m.submits, 1u64);
        prop_assert_eq!(m.completions, 1u64);
    }
}
