//! Statistical parity harness for the quantized metric profile.
//!
//! The quantized decoder is *not* bit-identical to the exact one — its
//! contract is statistical: on a fixed seed grid, quantized BLER must
//! sit within binomial slack of the exact profile's BLER (both decode
//! the identical noise realisations, seed for seed), and must stay
//! under the `spinal-bounds` analytic ML upper bound with the same
//! slack the PR 3 oracle harness uses. Alongside the parity cells, the
//! quantized profile's *determinism* contract is pinned: identical
//! estimates and decodes through serial workspaces, the batched engine
//! pipeline, and the streaming submit/drain path at thread counts
//! {1, 2, 8}.
//!
//! Trial counts scale down in debug builds (tier-1 `cargo test -q`)
//! and up in `--release` (the CI `quant-parity` job).

use spinal_codes::bounds::{BoundChannel, SpinalBound};
use spinal_codes::core::MetricProfile;
use spinal_codes::sim::bler::BlerRun;
use spinal_codes::{CodeParams, DecodeEngine, DecodeWorkspace, LinkChannel};

/// Trials per grid cell (see module docs).
fn trials_per_cell() -> usize {
    if cfg!(debug_assertions) {
        40
    } else {
        200
    }
}

/// Slack for comparing two BLER estimates over the same seeds: 5σ of
/// the binomial at the pooled rate plus a small absolute allowance —
/// the same shape as the PR 3 oracle cutoff. Decisions only differ
/// where quantization rounding flips a near-tie, so the pooled-rate σ
/// is conservative.
fn parity_slack(trials: usize, pooled_errors: usize) -> usize {
    let p = (pooled_errors as f64 / (2.0 * trials as f64)).clamp(0.02, 0.98);
    let sd = (trials as f64 * p * (1.0 - p)).sqrt();
    (5.0 * sd).ceil() as usize + 3
}

/// Largest error count consistent with a true block error probability
/// of at most `p` (the bound-oracle cutoff).
fn bound_cutoff(trials: usize, p: f64) -> usize {
    let mean = trials as f64 * p;
    let sd = (trials as f64 * p * (1.0 - p)).sqrt();
    (mean + 5.0 * sd).ceil() as usize + 3
}

struct Cell {
    label: &'static str,
    link: LinkChannel,
    bound_ch: BoundChannel,
    passes: usize,
    snr_db: f64,
}

fn grid() -> Vec<Cell> {
    let awgn = |passes, snr_db, label| Cell {
        label,
        link: LinkChannel::Awgn,
        bound_ch: BoundChannel::Awgn,
        passes,
        snr_db,
    };
    let ray = |passes, snr_db, label| Cell {
        label,
        link: LinkChannel::Rayleigh { tau: 1, csi: true },
        bound_ch: BoundChannel::RayleighCsi { tau: 1 },
        passes,
        snr_db,
    };
    // Cells straddle each channel's waterfall so the comparison sees
    // all-fail, marginal, and all-pass regimes.
    vec![
        awgn(2, 4.0, "awgn/2p/4dB"),
        awgn(2, 6.0, "awgn/2p/6dB"),
        awgn(2, 8.0, "awgn/2p/8dB"),
        awgn(2, 12.0, "awgn/2p/12dB"),
        ray(2, 9.0, "rayleigh/2p/9dB"),
        ray(2, 12.0, "rayleigh/2p/12dB"),
    ]
}

/// The acceptance invariant: quantized BLER within slack of exact BLER
/// on every cell, and under the analytic bound + slack wherever the
/// bound is informative.
#[test]
fn quantized_bler_tracks_exact_within_slack_and_under_the_bound() {
    let params = CodeParams::default().with_n(64).with_b(256);
    let trials = trials_per_cell();
    let mut ws = DecodeWorkspace::new();

    for cell in grid() {
        let exact_run = BlerRun::new(params.clone()).with_channel(cell.link);
        let quant_run = BlerRun::new(params.clone())
            .with_channel(cell.link)
            .with_profile(MetricProfile::Quantized);
        let symbols = cell.passes * exact_run.schedule().symbols_per_pass();

        let exact = exact_run.measure(cell.snr_db, symbols, trials, 0, &mut ws);
        let quant = quant_run.measure(cell.snr_db, symbols, trials, 0, &mut ws);

        let slack = parity_slack(trials, exact.errors + quant.errors);
        let diff = quant.errors.abs_diff(exact.errors);
        assert!(
            diff <= slack,
            "{}: quantized BLER {} vs exact {} differs by {diff} > slack {slack} \
             ({} trials)",
            cell.label,
            quant.bler(),
            exact.bler(),
            trials
        );

        let bound = SpinalBound::new(&params, cell.bound_ch).bler_bound(cell.snr_db, symbols);
        assert!(
            (0.0..=1.0).contains(&bound),
            "{}: bound {bound} is not a probability",
            cell.label
        );
        if bound < 1.0 {
            let cutoff = bound_cutoff(trials, bound);
            assert!(
                quant.errors <= cutoff,
                "{}: quantized errors {} exceed analytic bound cutoff {cutoff} \
                 (bound {bound:.3e}, {} trials)",
                cell.label,
                quant.errors,
                trials
            );
        }
    }
}

/// The determinism half of the acceptance: quantized measurements are
/// bit-identical across serial, batched-engine, and streaming dispatch
/// at thread counts {1, 2, 8}.
#[test]
fn quantized_estimates_are_identical_across_engine_paths() {
    let params = CodeParams::default().with_n(64).with_b(64);
    let trials = if cfg!(debug_assertions) { 12 } else { 48 };
    for link in [
        LinkChannel::Awgn,
        LinkChannel::Rayleigh { tau: 4, csi: true },
    ] {
        let run = BlerRun::new(params.clone())
            .with_channel(link)
            .with_profile(MetricProfile::Quantized);
        let symbols = 2 * run.schedule().symbols_per_pass();
        let mut ws = DecodeWorkspace::new();
        let serial = run.measure(6.0, symbols, trials, 11, &mut ws);
        for threads in [1usize, 2, 8] {
            let engine = DecodeEngine::new(threads);
            assert_eq!(
                serial,
                run.measure_with_engine(6.0, symbols, trials, 11, &engine),
                "{link:?} threads {threads}"
            );
        }
    }
}

/// Streaming submit/drain inherits the quantized profile and matches
/// the serial decodes bit for bit at every thread count.
#[test]
fn quantized_submit_drain_matches_serial_decodes() {
    use spinal_codes::{
        AwgnChannel, BubbleDecoder, Channel, Encoder, Message, RxSymbols, Schedule,
    };
    let params = CodeParams::default().with_n(96).with_b(32);
    let schedule = Schedule::new(params.num_spines(), params.tail, params.puncturing);
    let rxs: Vec<RxSymbols> = (0..6u64)
        .map(|seed| {
            let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let msg = Message::random(96, move || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (s >> 56) as u8
            });
            let mut enc = Encoder::new(&params, &msg);
            let mut rx = RxSymbols::new(schedule.clone());
            let mut ch = AwgnChannel::new(8.0, seed + 17);
            rx.push(&ch.transmit(&enc.next_symbols(2 * schedule.symbols_per_pass())));
            rx
        })
        .collect();
    let dec = BubbleDecoder::new(&params).with_profile(MetricProfile::Quantized);
    let mut ws = DecodeWorkspace::new();
    let serial: Vec<_> = rxs
        .iter()
        .map(|rx| {
            spinal_codes::DecodeRequest::new(&dec, rx)
                .workspace(&mut ws)
                .decode()
        })
        .collect();
    for threads in [1usize, 2, 8] {
        let engine = DecodeEngine::new(threads);
        for rx in &rxs {
            engine.submit(&dec, rx);
        }
        let drained = engine.drain();
        assert_eq!(drained.len(), serial.len());
        for (s, p) in serial.iter().zip(&drained) {
            let p = p.as_ref().expect("clean submit decodes");
            assert_eq!(s.message, p.message, "threads {threads}");
            assert_eq!(s.cost.to_bits(), p.cost.to_bits(), "threads {threads}");
        }
        // Batch path through the same engine.
        let batch = engine.decode_batch_parallel(&dec, &rxs);
        for (s, p) in serial.iter().zip(&batch) {
            assert_eq!(s.message, p.message, "batch threads {threads}");
            assert_eq!(
                s.cost.to_bits(),
                p.cost.to_bits(),
                "batch threads {threads}"
            );
        }
    }
}
