//! Stress and adversarial-input tests: boundary parameters, pathological
//! messages, fault injection, and decoder robustness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spinal_codes::{
    AwgnChannel, BubbleDecoder, Channel, CodeParams, Encoder, Message, Puncturing, RxSymbols,
    Schedule,
};

fn decode_once(params: &CodeParams, msg: &Message, snr_db: f64, passes: usize, seed: u64) -> bool {
    let mut enc = Encoder::new(params, msg);
    let schedule = Schedule::new(params.num_spines(), params.tail, params.puncturing);
    let mut rx = RxSymbols::new(schedule.clone());
    let mut ch = AwgnChannel::new(snr_db, seed);
    let tx = enc.next_symbols(passes * schedule.symbols_per_pass());
    rx.push(&ch.transmit(&tx));
    spinal_codes::DecodeRequest::new(&BubbleDecoder::new(params), &rx)
        .decode()
        .message
        == *msg
}

#[test]
fn pathological_messages_decode_like_random_ones() {
    // §3.2: a pseudo-random s0 scrambles adversarial inputs. Even with
    // s0 = 0, the hash chain should handle degenerate messages.
    let params = CodeParams::default().with_n(128);
    let all_zero = Message::zeros(128);
    let all_one = Message::from_bits(&[true; 128]);
    let alternating = Message::from_bits(&(0..128).map(|i| i % 2 == 0).collect::<Vec<_>>());
    for (name, msg) in [("zeros", all_zero), ("ones", all_one), ("alt", alternating)] {
        assert!(
            decode_once(&params, &msg, 12.0, 3, 7),
            "pathological message {name} failed"
        );
    }
}

#[test]
fn minimum_viable_block_sizes() {
    // One spine value (n = k) is degenerate but legal.
    for k in [1usize, 2, 4, 8] {
        let params = CodeParams::default()
            .with_n(k)
            .with_k(k)
            .with_d(1)
            .with_b(4);
        let msg = Message::from_bits(&(0..k).map(|i| i % 2 == 1).collect::<Vec<_>>());
        assert!(
            decode_once(&params, &msg, 25.0, 4, 3),
            "n=k={k} failed to round-trip"
        );
    }
}

#[test]
fn extreme_beam_and_depth_combinations() {
    let mut rng = StdRng::seed_from_u64(5);
    let msg = Message::random(24, || rng.gen());
    for (b, d) in [(1usize, 1usize), (1, 6), (4096, 1), (16, 3)] {
        let params = CodeParams::default()
            .with_n(24)
            .with_k(2)
            .with_b(b)
            .with_d(d)
            .with_tail(1);
        assert!(
            decode_once(&params, &msg, 22.0, 3, 9),
            "B={b}, d={d} failed"
        );
    }
}

#[test]
fn heavy_erasures_only_delay_decoding() {
    use spinal_codes::sim::SpinalRun;
    // 60% of subpasses erased: the prefix property and RNG indexing must
    // keep the survivors useful.
    let run = SpinalRun::new(CodeParams::default().with_n(96).with_b(64))
        .with_erasures(0.6)
        .with_max_passes(200);
    let mut ok = 0;
    for seed in 0..4 {
        if run.run_trial(15.0, seed).symbols.is_some() {
            ok += 1;
        }
    }
    assert!(ok >= 3, "only {ok}/4 decoded under 60% erasure");
}

#[test]
fn decoder_copes_with_wildly_excess_symbols() {
    // 60 passes at high SNR: cost accumulation must stay finite and the
    // answer exact.
    let params = CodeParams::default().with_n(32).with_b(16);
    let mut rng = StdRng::seed_from_u64(11);
    let msg = Message::random(32, || rng.gen());
    assert!(decode_once(&params, &msg, 20.0, 60, 13));
}

#[test]
fn c_extremes_round_trip() {
    let mut rng = StdRng::seed_from_u64(17);
    let msg = Message::random(64, || rng.gen());
    for c in [1u32, 2, 12, 16] {
        let params = CodeParams::default().with_n(64).with_c(c);
        // c=1 needs more symbols (max ~2 bits/symbol through QPSK-like
        // mapping); give everything 8 passes at 10 dB.
        assert!(
            decode_once(&params, &msg, 10.0, 8, 19),
            "c={c} failed to round-trip"
        );
    }
}

#[test]
fn every_puncturing_interoperates_with_every_depth() {
    let mut rng = StdRng::seed_from_u64(23);
    let msg = Message::random(48, || rng.gen());
    for ways in [1usize, 2, 8] {
        for d in [1usize, 2] {
            let params = CodeParams::default()
                .with_n(48)
                .with_k(3)
                .with_b(32)
                .with_d(d)
                .with_puncturing(Puncturing::strided(ways));
            assert!(
                decode_once(&params, &msg, 14.0, 4, 29),
                "ways={ways}, d={d} failed"
            );
        }
    }
}

#[test]
fn crc_false_positive_rate_is_low_under_garbage() {
    // Feed the frame validator decoded garbage: the 16-bit CRC must
    // reject essentially everything.
    use spinal_codes::FrameBuilder;
    let fb = FrameBuilder::new(256);
    let mut rng = StdRng::seed_from_u64(31);
    let mut false_pos = 0;
    let trials = 20_000;
    for _ in 0..trials {
        let garbage = Message::random(256, || rng.gen());
        if fb.validate(&garbage).is_some() {
            false_pos += 1;
        }
    }
    // Expected ≈ trials/65536 ≈ 0.3; allow up to 5.
    assert!(
        false_pos <= 5,
        "{false_pos} CRC false positives in {trials}"
    );
}

#[test]
fn interleaved_block_decoding_is_independent() {
    // Two blocks over one buffer each must not interfere — the framing
    // layer's assumption (§6: blocks encoded separately).
    let params = CodeParams::default().with_n(64);
    let mut rng = StdRng::seed_from_u64(37);
    let a = Message::random(64, || rng.gen());
    let b = Message::random(64, || rng.gen());
    assert!(decode_once(&params, &a, 15.0, 2, 41));
    assert!(decode_once(&params, &b, 15.0, 2, 41));
}
