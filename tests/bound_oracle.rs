//! The analytic-oracle statistical test harness.
//!
//! `spinal-bounds` computes upper bounds on the ML block-error rate. For
//! a fixed-seed grid of (channel, n, B, SNR, symbol-budget) cells, the
//! *simulated* BLER must not exceed the analytic bound beyond binomial-
//! confidence slack — one invariant that simultaneously pins down the
//! encoder (wrong symbols would shift distances), the channel models
//! (wrong noise/fading variance shifts the waterfall), and the decoder
//! (a search regression shows up as excess errors). No fixed-output
//! corpus can make that promise: these cells keep meaning under any
//! behaviour-preserving refactor.
//!
//! Two deliberate asymmetries make the harness sound:
//!
//! * The bubble decoder approximates ML, so near the bound's cliff it
//!   can err slightly *above* the ML bound (beam pruning, not a bug).
//!   The slack term `5·σ_binomial + 3` absorbs that residual together
//!   with Monte-Carlo noise; with the shim RNG everything is
//!   deterministic, so a passing grid stays passing.
//! * One cell decodes with the exact [`MlDecoder`], where "sim ≤ bound"
//!   is a theorem, not an approximation.
//!
//! Trial counts scale down in debug builds (tier-1 `cargo test -q`)
//! and up in `--release` (the CI `bounds-smoke` job).

use spinal_codes::bounds::{BoundChannel, SpinalBound};
use spinal_codes::core::ml::MlDecoder;
use spinal_codes::sim::bler::BlerRun;
use spinal_codes::{
    AwgnChannel, Channel, CodeParams, DecodeWorkspace, Encoder, LinkChannel, Message, RxSymbols,
    Schedule,
};

/// Trials per grid cell: enough for the binomial cutoffs to bite in
/// release (CI bounds-smoke), lighter under the debug tier-1 run.
fn trials_per_cell() -> usize {
    if cfg!(debug_assertions) {
        40
    } else {
        200
    }
}

/// Largest error count consistent (with ~5σ one-sided confidence plus a
/// small absolute allowance for beam-vs-ML residuals) with a true block
/// error probability of at most `p`.
fn binomial_cutoff(trials: usize, p: f64) -> usize {
    let mean = trials as f64 * p;
    let sd = (trials as f64 * p * (1.0 - p)).sqrt();
    (mean + 5.0 * sd).ceil() as usize + 3
}

struct Cell {
    label: &'static str,
    link: LinkChannel,
    bound_ch: BoundChannel,
    passes: usize,
    snr_db: f64,
}

fn grid() -> Vec<Cell> {
    let awgn = |passes, snr_db, label| Cell {
        label,
        link: LinkChannel::Awgn,
        bound_ch: BoundChannel::Awgn,
        passes,
        snr_db,
    };
    let ray = |passes, snr_db, label| Cell {
        label,
        link: LinkChannel::Rayleigh { tau: 1, csi: true },
        bound_ch: BoundChannel::RayleighCsi { tau: 1 },
        passes,
        snr_db,
    };
    vec![
        // AWGN, 2 passes: the bound's cliff sits between 6 and 8 dB.
        awgn(2, 4.0, "awgn/2p/4dB"),
        awgn(2, 6.0, "awgn/2p/6dB"),
        awgn(2, 8.0, "awgn/2p/8dB"),
        awgn(2, 10.0, "awgn/2p/10dB"),
        awgn(2, 12.0, "awgn/2p/12dB"),
        // AWGN, 3 passes: lower rate moves the cliff to ~4 dB.
        awgn(3, 3.0, "awgn/3p/3dB"),
        awgn(3, 4.0, "awgn/3p/4dB"),
        awgn(3, 5.0, "awgn/3p/5dB"),
        awgn(3, 7.0, "awgn/3p/7dB"),
        // iid Rayleigh with CSI: cliff ~10 dB at 2 passes.
        ray(2, 6.0, "rayleigh/2p/6dB"),
        ray(2, 9.0, "rayleigh/2p/9dB"),
        ray(2, 11.0, "rayleigh/2p/11dB"),
        ray(2, 12.0, "rayleigh/2p/12dB"),
        ray(2, 14.0, "rayleigh/2p/14dB"),
    ]
}

/// The tentpole invariant: on every grid cell, simulated BLER stays at
/// or below the analytic upper bound within binomial slack, and the
/// bound is informative (< 1) on at least half the grid.
#[test]
fn simulated_bler_never_exceeds_the_analytic_bound() {
    let params = CodeParams::default().with_n(64).with_b(256);
    let trials = trials_per_cell();
    let mut ws = DecodeWorkspace::new();
    let mut nontrivial = 0usize;
    let cells = grid();

    for (ci, cell) in cells.iter().enumerate() {
        let run = BlerRun::new(params.clone()).with_channel(cell.link);
        let symbols = cell.passes * run.schedule().symbols_per_pass();
        let bound = SpinalBound::new(&params, cell.bound_ch).bler_bound(cell.snr_db, symbols);
        assert!(
            (0.0..=1.0).contains(&bound),
            "{}: bound {bound} is not a probability",
            cell.label
        );
        if bound < 1.0 {
            nontrivial += 1;
        }

        let seed_base = (ci as u64) << 32;
        let est = run.measure(cell.snr_db, symbols, trials, seed_base, &mut ws);
        let cutoff = binomial_cutoff(trials, bound.min(1.0));
        assert!(
            est.errors <= cutoff,
            "{}: simulated BLER {:.4} ({} errors / {trials} trials) exceeds \
             analytic bound {bound:.3e} beyond slack (cutoff {cutoff})",
            cell.label,
            est.bler(),
            est.errors,
        );
    }

    assert!(
        2 * nontrivial >= cells.len(),
        "bound must be informative (< 1) on at least half the grid: {nontrivial}/{}",
        cells.len()
    );
}

/// For the exact ML decoder the bound is a theorem: check it on a block
/// small enough to enumerate. (The bubble cells above additionally
/// absorb beam-vs-ML residue; here there is none.)
#[test]
fn ml_decoder_respects_the_bound_exactly() {
    let params = CodeParams::default().with_n(16);
    let trials = trials_per_cell().min(60);
    let snr_db = 8.0;
    let passes = 2;

    let schedule = Schedule::new(params.num_spines(), params.tail, params.puncturing);
    let symbols = passes * schedule.symbols_per_pass();
    let bound = SpinalBound::new(&params, BoundChannel::Awgn).bler_bound(snr_db, symbols);

    let ml = MlDecoder::new(&params);
    let mut errors = 0usize;
    for seed in 0..trials as u64 {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let msg = Message::random(params.n, || rand::Rng::gen(&mut rng));
        let mut enc = Encoder::new(&params, &msg);
        let mut rx = RxSymbols::new(schedule.clone());
        let mut ch = AwgnChannel::new(snr_db, seed.wrapping_add(0xC11A));
        rx.push(&ch.transmit(&enc.next_symbols(symbols)));
        if ml.decode(&rx).message != msg {
            errors += 1;
        }
    }
    let cutoff = binomial_cutoff(trials, bound.min(1.0));
    assert!(
        errors <= cutoff,
        "ML: {errors}/{trials} errors vs bound {bound:.3e} (cutoff {cutoff})"
    );
}

/// The bound must also be *attained* approximately: where it says the
/// channel is hopeless (bound = 1 well below the rate point), the
/// simulation must indeed fail most of the time. Guards against the
/// bound accidentally going vacuous-tight (e.g. an exponent sign flip
/// making it ~0 everywhere would trip the oracle above only at cliff
/// cells; this cell pins the other side).
#[test]
fn hopeless_cells_fail_in_simulation_too() {
    let params = CodeParams::default().with_n(64).with_b(256);
    let run = BlerRun::new(params.clone());
    let symbols = run.schedule().symbols_per_pass(); // 1 pass, rate 64/18
    let snr_db = 0.0; // capacity 1 b/s < rate 3.56 b/s: infeasible
    let bound = SpinalBound::new(&params, BoundChannel::Awgn).bler_bound(snr_db, symbols);
    assert!(bound > 0.999, "infeasible cell must be bound-trivial");

    let trials = trials_per_cell().min(30);
    let mut ws = DecodeWorkspace::new();
    let est = run.measure(snr_db, symbols, trials, 99, &mut ws);
    assert!(
        est.bler() > 0.9,
        "infeasible cell decoded too often: {}",
        est.bler()
    );
}

/// Oracle sanity for the overlay plumbing: the CSV the `bounds_vs_sim`
/// binary emits pairs every simulated point with the same bound value
/// the oracle grid uses.
#[test]
fn overlay_sweep_uses_identical_bound_values() {
    use spinal_codes::sim::sweep::{run_overlay_with, SweepMode};
    let params = CodeParams::default().with_n(64).with_b(64);
    let run = BlerRun::new(params.clone());
    let symbols = 2 * run.schedule().symbols_per_pass();
    let bound = SpinalBound::new(&params, BoundChannel::Awgn);
    let snrs = [8.0, 12.0];
    let pts = run_overlay_with(
        &snrs,
        2,
        DecodeWorkspace::new,
        |ws, i, snr| run.measure(snr, symbols, 5, (i as u64) << 20, ws).bler(),
        SweepMode::BoundOverlay,
        |snr| bound.bler_bound(snr, symbols),
    );
    for (p, &snr) in pts.iter().zip(&snrs) {
        assert_eq!(p.bound, Some(bound.bler_bound(snr, symbols)), "snr {snr}");
        assert!((0.0..=1.0).contains(&p.sim));
    }
}
