//! Property tests for the §6 framing layer and the §5 puncturing
//! schedules: round-trip identities that must hold for *arbitrary*
//! payloads and schedule shapes, not just the examples the unit tests
//! pin down.

use proptest::prelude::*;
use spinal_codes::core::rx::RxSymbols;
use spinal_codes::{BubbleDecoder, CodeParams, Encoder, FrameBuilder, Puncturing, Schedule};

fn arb_ways() -> impl Strategy<Value = usize> {
    (0u32..4).prop_map(|i| 1usize << i) // 1, 2, 4, 8 — the paper's set
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Datagram → CRC blocks → validate → reassemble is the identity on
    /// the payload bytes, for arbitrary datagrams and block sizes.
    #[test]
    fn framing_build_validate_reassemble_round_trip(
        data in proptest::collection::vec(any::<u8>(), 0..200),
        block_choice in 0usize..3,
    ) {
        let block_bits = [64usize, 128, 256][block_choice];
        let fb = FrameBuilder::new(block_bits);
        let blocks = fb.build(&data);
        prop_assert!(!blocks.is_empty());
        let mut re = spinal_codes::core::framing::FrameReassembly::new(
            fb.clone(), 0, blocks.len(), data.len(),
        );
        for (i, b) in blocks.iter().enumerate() {
            prop_assert_eq!(b.len_bits(), block_bits);
            prop_assert!(re.offer(i, b), "block {} failed CRC", i);
        }
        prop_assert!(re.complete());
        prop_assert_eq!(re.into_datagram().unwrap(), data);
    }

    /// Flipping any single bit of a block must break its CRC — the
    /// receiver's only success signal is allowed no false positives on
    /// 1-bit corruption.
    #[test]
    fn framing_rejects_any_single_bit_flip(
        data in proptest::collection::vec(any::<u8>(), 1..40),
        flip in 0usize..256,
    ) {
        let fb = FrameBuilder::new(256);
        let mut block = fb.build(&data).swap_remove(0);
        let bit = flip % block.len_bits();
        block.set_bit(bit, !block.bit(bit));
        prop_assert!(fb.validate(&block).is_none(), "flip at {} passed", bit);
    }

    /// Frame → symbols → frame: a CRC block encoded to spinal symbols
    /// and decoded from a clean observation validates back to the exact
    /// payload. This closes the loop through the real encoder, schedule
    /// and decoder rather than just the byte packer.
    #[test]
    fn frame_survives_the_symbol_domain(
        data in proptest::collection::vec(any::<u8>(), 1..12),
    ) {
        let params = CodeParams::default().with_n(128).with_b(16);
        let fb = FrameBuilder::new(params.n);
        let schedule = Schedule::new(params.num_spines(), params.tail, params.puncturing);
        let decoder = BubbleDecoder::new(&params);
        for block in fb.build(&data) {
            let mut enc = Encoder::new(&params, &block);
            let tx = enc.next_symbols(schedule.symbols_per_pass());
            let mut rx = RxSymbols::new(schedule.clone());
            rx.push(&tx); // noiseless: identity channel
            let decoded = spinal_codes::DecodeRequest::new(&decoder, &rx).decode();
            prop_assert_eq!(&decoded.message, &block);
            prop_assert!(fb.validate(&decoded.message).is_some());
        }
        // And the reassembled datagram is the original.
        let blocks = fb.build(&data);
        let mut re = spinal_codes::core::framing::FrameReassembly::new(
            fb, 1, blocks.len(), data.len(),
        );
        for (i, b) in blocks.iter().enumerate() {
            prop_assert!(re.offer(i, b));
        }
        prop_assert_eq!(re.into_datagram().unwrap(), data);
    }

    /// One complete pass of any strided schedule covers every spine
    /// index exactly once (the final spine once more per tail symbol) —
    /// "the puncturing schedule covers every pass index exactly once".
    #[test]
    fn one_pass_covers_every_spine_exactly_once(
        n_spines in 1usize..100,
        tail in 0usize..4,
        ways in arb_ways(),
    ) {
        let s = Schedule::new(n_spines, tail, Puncturing::strided(ways));
        let pass = s.generate(n_spines + tail);
        let mut count = vec![0usize; n_spines];
        for p in &pass {
            count[p.spine] += 1;
        }
        for (i, &c) in count.iter().enumerate() {
            let expect = if i == n_spines - 1 { 1 + tail } else { 1 };
            prop_assert_eq!(c, expect, "ways={} spine {}", ways, i);
        }
        // Per-spine RNG indices are stream-global counters: within one
        // pass each spine's indices are 0..count.
        let mut next = vec![0u32; n_spines];
        for p in &pass {
            prop_assert_eq!(p.rng_index, next[p.spine]);
            next[p.spine] += 1;
        }
    }

    /// The rateless prefix property holds for arbitrary schedule shapes:
    /// the first `t` positions never depend on how much is generated.
    #[test]
    fn schedule_prefix_property(
        n_spines in 1usize..64,
        tail in 0usize..3,
        ways in arb_ways(),
        take in 1usize..150,
    ) {
        let s = Schedule::new(n_spines, tail, Puncturing::strided(ways));
        let long = s.generate(200);
        prop_assert_eq!(&s.generate(take)[..], &long[..take]);
    }

    /// Subpass boundaries partition the stream: strictly increasing,
    /// ending at the budget, and each pass contributes exactly
    /// `symbols_per_pass` between successive pass marks.
    #[test]
    fn subpass_boundaries_partition_the_stream(
        n_spines in 1usize..64,
        tail in 0usize..3,
        ways in arb_ways(),
        passes in 1usize..4,
    ) {
        let s = Schedule::new(n_spines, tail, Puncturing::strided(ways));
        let total = passes * s.symbols_per_pass();
        let b = s.subpass_boundaries(total);
        prop_assert!(!b.is_empty());
        prop_assert_eq!(*b.last().unwrap(), total);
        for w in b.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        // Non-empty subpasses per pass: boundaries per pass are equal
        // counts for every pass (the layout repeats).
        let per_pass = b.iter().filter(|&&x| x <= s.symbols_per_pass()).count();
        prop_assert_eq!(b.len(), per_pass * passes);
    }
}
