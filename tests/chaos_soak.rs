//! Chaos soak: drive many seeded fault schedules through the full
//! transport and require a *structured* terminal outcome from every
//! one — never a panic, never an unclassified error, never a lost
//! buffer. Also the determinism witness: identical seeds must produce
//! byte-identical fault traces and transfer reports.
//!
//! The schedule count defaults to 200 and scales with the
//! `CHAOS_SCHEDULES` env var (the CI chaos-smoke job runs the default;
//! a longer soak just sets the variable higher).

use spinal_codes::net::{
    run_transfer, ChaosLink, FaultPlan, Impairments, LoopbackLink, NoiseModel, TransferConfig,
    TransferErrorKind, TransferOutcome, TransferReport, DATA_PAYLOAD_OFFSET,
};
use spinal_codes::{CodeParams, GeParams};

/// SplitMix64 — the soak's only randomness, fully derived from the
/// schedule seed so every run is reproducible.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a fault plan from one word of seed material: every fault
/// class is exercised across the soak, none so hard that no schedule
/// ever delivers.
fn plan_for(bits: u64) -> FaultPlan {
    let pct = |shift: u32, ceil: f64| ((bits >> shift) & 0xF) as f64 / 15.0 * ceil;
    let ge = if bits & 1 != 0 {
        Some(GeParams {
            p_good_to_bad: 0.01 + pct(4, 0.08),
            p_bad_to_good: 0.2 + pct(8, 0.4),
            loss_good: pct(12, 0.05),
            loss_bad: 0.5 + pct(16, 0.45),
        })
    } else {
        None
    };
    let blackouts = if bits & 2 != 0 {
        let start = 10 + ((bits >> 20) & 0x3F);
        let len = 5 + ((bits >> 26) & 0x1F);
        vec![(start, start + len)]
    } else {
        Vec::new()
    };
    FaultPlan {
        ge,
        blackouts,
        dup_prob: pct(32, 0.15),
        dup_max: 1 + ((bits >> 36) & 0x3) as usize,
        corrupt_prob: pct(40, 0.10),
        // Bit rot hits observation payloads, not framing: headers ride
        // under the PHY's integrity protection (§6, wire.rs docs).
        corrupt_skip: DATA_PAYLOAD_OFFSET,
        send_err_prob: pct(44, 0.05),
        recv_err_prob: pct(48, 0.05),
    }
}

struct RunResult {
    /// The report (from `Ok`, or carried inside the error).
    report: TransferReport,
    /// `Some(budget)` when the run failed with RetryBudgetExhausted.
    failed: bool,
    data_trace: u64,
    feedback_trace: u64,
}

fn run_one(seed: u64) -> RunResult {
    let p = CodeParams::default().with_n(64).with_b(16);
    let mut s = seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(1);
    // Small payloads (≤ 4 blocks) and mid-to-high SNR keep a debug-mode
    // 200-schedule soak inside the tier-1 time budget; the fault plans,
    // not the channel, are what this test stresses.
    let payload_len = (splitmix(&mut s) % 25) as usize;
    let payload: Vec<u8> = (0..payload_len).map(|_| splitmix(&mut s) as u8).collect();
    let snr_db = 10.0 + (splitmix(&mut s) % 10) as f64;
    let (tx, rx) = LoopbackLink::pair(
        NoiseModel::Awgn { snr_db },
        Impairments::clean(),
        Impairments::clean(),
        seed,
    );
    let data_plan = plan_for(splitmix(&mut s));
    let feedback_plan = plan_for(splitmix(&mut s));
    let mut tx = ChaosLink::new(tx, data_plan, seed ^ 0xD474_0000_0000_0001);
    let mut rx = ChaosLink::new(rx, feedback_plan, seed ^ 0xFEED_0000_0000_0002);
    let cfg = TransferConfig {
        max_passes: 6,
        max_rounds: 64,
        io_retry_budget: 48,
        ..TransferConfig::default()
    };
    let result = run_transfer(&mut tx, &mut rx, &p, &payload, seed | 1, cfg);
    let block_bytes = 6; // n=64 ⇒ 48 payload bits ⇒ 6 bytes per block
    let (report, failed) = match result {
        Ok(report) => {
            // Every successful run ends in one of the structured
            // outcomes — Aborted and DeadlineExceeded cannot appear
            // here (no deadline configured, errors return Err).
            match &report.outcome {
                TransferOutcome::Delivered(got) => {
                    assert_eq!(got, &payload, "seed {seed}: delivered bytes must match");
                }
                TransferOutcome::PartialDelivery {
                    blocks,
                    bytes_recovered,
                    blocks_decoded,
                    n_blocks,
                    ..
                } => {
                    assert_eq!(blocks.len(), *n_blocks, "seed {seed}");
                    assert_eq!(
                        blocks.iter().filter(|b| b.is_some()).count(),
                        *blocks_decoded,
                        "seed {seed}"
                    );
                    assert!(
                        *blocks_decoded >= 1 && blocks_decoded < n_blocks,
                        "seed {seed}"
                    );
                    let mut recovered = 0;
                    for (i, blk) in blocks.iter().enumerate() {
                        if let Some(bytes) = blk {
                            let lo = i * block_bytes;
                            let hi = ((i + 1) * block_bytes).min(payload.len());
                            assert_eq!(
                                &bytes[..],
                                &payload[lo..hi],
                                "seed {seed}: salvaged block {i} must match the source"
                            );
                            recovered += bytes.len();
                        }
                    }
                    assert_eq!(recovered, *bytes_recovered, "seed {seed}");
                }
                TransferOutcome::PassBudgetExhausted | TransferOutcome::RoundBudgetExhausted => {
                    assert_eq!(report.blocks_decoded, 0, "seed {seed}: zero-block ending");
                }
                other => panic!("seed {seed}: unexpected outcome {other:?}"),
            }
            (report, false)
        }
        Err(err) => {
            // The chaos layer only injects *transient* errors, so the
            // only legal failure is an exhausted retry budget — and the
            // partial report must still be attached and consistent.
            assert!(
                matches!(err.kind, TransferErrorKind::RetryBudgetExhausted),
                "seed {seed}: unexpected error kind {:?}",
                err.kind
            );
            assert_eq!(
                err.report.transient_io_errors,
                cfg.io_retry_budget + 1,
                "seed {seed}: budget + 1 transient errors at give-up"
            );
            (*err.report, true)
        }
    };
    assert!(report.rounds <= cfg.max_rounds, "seed {seed}");
    assert!(report.blocks_decoded <= report.n_blocks, "seed {seed}");
    RunResult {
        report,
        failed,
        data_trace: tx.fingerprint(),
        feedback_trace: rx.fingerprint(),
    }
}

#[test]
fn soak_seeded_schedules_end_structurally_and_deterministically() {
    let schedules: u64 = std::env::var("CHAOS_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let mut delivered = 0u64;
    let mut partial = 0u64;
    let mut exhausted = 0u64;
    let mut errored = 0u64;
    let mut evictions = 0u64;
    for seed in 0..schedules {
        let one = run_one(seed);
        if one.failed {
            errored += 1;
        } else {
            match one.report.outcome {
                TransferOutcome::Delivered(_) => delivered += 1,
                TransferOutcome::PartialDelivery { .. } => partial += 1,
                _ => exhausted += 1,
            }
        }
        evictions += one.report.reorder_evictions;
        // Determinism witness on every tenth schedule: identical seed
        // ⇒ byte-identical fault traces and transfer report.
        if seed % 10 == 0 {
            let again = run_one(seed);
            assert_eq!(one.report, again.report, "seed {seed}: report must replay");
            assert_eq!(
                one.report.fingerprint(),
                again.report.fingerprint(),
                "seed {seed}"
            );
            assert_eq!(one.data_trace, again.data_trace, "seed {seed}: data trace");
            assert_eq!(
                one.feedback_trace, again.feedback_trace,
                "seed {seed}: feedback trace"
            );
        }
    }
    println!(
        "chaos soak: {schedules} schedules — {delivered} delivered, {partial} partial, \
         {exhausted} exhausted, {errored} errored, {evictions} reorder evictions"
    );
    assert_eq!(
        delivered + partial + exhausted + errored,
        schedules,
        "every schedule ends in exactly one structured outcome"
    );
    assert!(
        delivered > schedules / 4,
        "the soak is miscalibrated: only {delivered}/{schedules} delivered"
    );
    assert!(
        partial + exhausted + errored > 0,
        "the soak is miscalibrated: no schedule was ever degraded"
    );
}

/// Panic-injection soak (PR 10 acceptance): ≥100 seeded schedules of
/// poisoned and clean decode attempts through one long-lived pooled
/// service. Every injected worker panic must resolve as a structured
/// [`DecodeFailure::WorkerPanicked`] — the process survives, the
/// session's resources come back, the *next* clean attempt on the same
/// session decodes bit-identically to a serial reference — and at the
/// end the metrics books balance exactly: no completion lost, none
/// duplicated, none leaked as stale.
#[test]
fn panic_injection_soak_survives_and_books_balance() {
    use spinal_codes::core::DecodeFailure;
    use spinal_codes::{
        BubbleDecoder, CodeParams, DecodeRequest, DecodeService, Encoder, Message, RxSymbols,
        Schedule, ServiceConfig, SessionBuffer, SessionOptions,
    };
    use std::sync::Arc;

    let schedules: u64 = std::env::var("CHAOS_PANIC_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120);
    assert!(schedules >= 100, "the acceptance bar is ≥100 schedules");
    let p = CodeParams::default().with_n(32).with_b(8);
    let dec = Arc::new(BubbleDecoder::new(&p));
    // One pooled service for the whole soak: every poison kills a real
    // worker thread, so the pool respawns ~schedules/2 workers over the
    // run while still serving every clean attempt.
    let svc = DecodeService::new(2, ServiceConfig::default());
    let mut poisons = 0u64;
    let mut cleans = 0u64;
    for seed in 0..schedules {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(3);
        let msg = Message::from_bytes(
            (0..4)
                .map(|i| splitmix(&mut s) as u8 ^ i)
                .collect::<Vec<u8>>(),
            32,
        );
        let mut enc = Encoder::new(&p, &msg);
        let tx = enc.next_symbols(2 * p.symbols_per_pass());
        let mut ch = spinal_codes::channel::AwgnChannel::new(12.0, seed);
        let ys = spinal_codes::channel::Channel::transmit(&mut ch, &tx);
        let sched = Schedule::new(p.num_spines(), p.tail, p.puncturing);
        let mut rx = RxSymbols::new(sched);
        rx.push(&ys);
        let serial = DecodeRequest::new(&dec, &rx).decode();
        let mut session = svc
            .open_session(&dec, SessionBuffer::Symbols(rx), SessionOptions::default())
            .expect("admitted");
        let attempts = 1 + splitmix(&mut s) % 3;
        for attempt in 0..attempts {
            let poisoned = splitmix(&mut s) & 1 == 0;
            if poisoned {
                session.poison_next_attempt("soak poison");
            }
            session.submit().expect("queued");
            match session.wait().expect("attempt in flight") {
                Ok(r) => {
                    assert!(!poisoned, "seed {seed}: poisoned attempt decoded");
                    assert_eq!(
                        r.message, serial.message,
                        "seed {seed} attempt {attempt}: post-recovery decode must \
                         stay bit-identical to the serial reference"
                    );
                    cleans += 1;
                }
                Err(DecodeFailure::WorkerPanicked { payload_msg }) => {
                    assert!(poisoned, "seed {seed}: clean attempt panicked");
                    assert_eq!(payload_msg, "soak poison", "seed {seed}");
                    poisons += 1;
                }
                Err(other) => panic!("seed {seed}: unexpected failure {other:?}"),
            }
            assert!(
                session.buffer().is_some(),
                "seed {seed}: resources must return after every attempt"
            );
        }
    }
    println!("panic soak: {schedules} schedules — {poisons} poisoned, {cleans} clean");
    assert!(
        poisons >= schedules / 3,
        "soak miscalibrated: only {poisons} panics injected over {schedules} schedules"
    );
    assert!(cleans > 0, "soak miscalibrated: no clean attempt ever ran");
    let m = svc.metrics();
    assert_eq!(m.worker_panics, poisons, "every panic counted exactly once");
    assert_eq!(m.attempts_failed, poisons);
    assert_eq!(
        m.completions, cleans,
        "no clean completion lost or duplicated"
    );
    assert_eq!(m.stale_completions, 0, "no completion leaked as stale");
    assert_eq!(
        m.submits,
        m.completions
            + m.attempts_cancelled
            + m.attempts_deadline_expired
            + m.attempts_failed
            + m.brownout_sheds,
        "every submit ends in exactly one structured outcome"
    );
}

/// Different seeds must not share a fault trace — the soak would be
/// silently re-running one schedule 200 times otherwise.
#[test]
fn distinct_seeds_produce_distinct_traces() {
    let a = run_one(1000);
    let b = run_one(1001);
    assert!(
        a.data_trace != b.data_trace || a.feedback_trace != b.feedback_trace,
        "seeds 1000/1001 produced identical traces"
    );
}
